package rules

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis/orbvet"
	"repro/internal/check"
)

// leaselife mechanizes DESIGN §9's buffer-lease lifetime rules. A
// wire.Message decoded with the binary codec carries a Body that views a
// pooled, refcounted lease; FreeMessage / ReleaseBody return that buffer to
// the pool, after which any read through the message — or through a slice
// derived from its Body — observes whatever the pool recycled the bytes
// into. -race cannot see this (the recycled write may be far away in time),
// so the rule tracks it syntactically: within a function body, in
// straight-line order,
//
//   - any use of a message variable after wire.FreeMessage(m) is flagged
//     (including a second FreeMessage — double-free pools the struct twice
//     and aliases two future callers);
//   - any read of m.Body after m.ReleaseBody() is flagged;
//   - any use of a view variable (v := m.Body, w := v[4:], …) after its
//     carrier was freed or released is flagged;
//   - a view that escapes the frame — returned, sent on a channel, stored
//     through a pointer/field, or captured by a go statement — without a
//     preceding m.RetainBody() is flagged.
//
// Reassignment clears a variable's freed state; facts established inside a
// conditional branch are discarded at the join (see walkSeq).
func init() {
	orbvet.Register(&orbvet.Analyzer{
		Name:     "leaselife",
		Doc:      "use of a lease-backed wire.Message body after FreeMessage/ReleaseBody, and body views escaping without RetainBody",
		Severity: check.SevError,
		Run:      leaselifeRun,
	})
}

const (
	wireMessageType = "repro/internal/wire.Message"
	freeMessageFn   = "repro/internal/wire.FreeMessage"
	releaseBodyFn   = "(*repro/internal/wire.Message).ReleaseBody"
	retainBodyFn    = "(*repro/internal/wire.Message).RetainBody"
)

func leaselifeRun(p *orbvet.Pass) {
	for _, f := range p.Pkg.Files {
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			v := &leaseVisitor{
				pass:     p,
				info:     p.Pkg.Info,
				retained: retainedMessages(p.Pkg.Info, fn.Body),
				dead:     map[types.Object]string{},
				bodyDead: map[types.Object]bool{},
				views:    map[types.Object]viewInfo{},
				deadView: map[types.Object]string{},
			}
			walkSeq(fn.Body.List, v)
		}
	}
}

// viewInfo ties a derived view variable back to its carrier message.
type viewInfo struct {
	carrier types.Object
	name    string // carrier's source name, for messages
}

type leaseVisitor struct {
	pass *orbvet.Pass
	info *types.Info
	// retained holds messages with a RetainBody call anywhere in the body —
	// a deliberately position-insensitive approximation (see DESIGN §13).
	retained map[types.Object]bool
	// dead: message vars after FreeMessage; value names the killer.
	dead map[types.Object]string
	// bodyDead: message vars after ReleaseBody (struct still live, Body not).
	bodyDead map[types.Object]bool
	// views: view var -> its carrier message.
	views map[types.Object]viewInfo
	// deadView: view vars whose carrier died; value names the killer.
	deadView map[types.Object]string
}

func (v *leaseVisitor) Fork() flowVisitor {
	c := &leaseVisitor{
		pass:     v.pass,
		info:     v.info,
		retained: v.retained, // immutable, shared
		dead:     map[types.Object]string{},
		bodyDead: map[types.Object]bool{},
		views:    map[types.Object]viewInfo{},
		deadView: map[types.Object]string{},
	}
	for k, s := range v.dead {
		c.dead[k] = s
	}
	for k := range v.bodyDead {
		c.bodyDead[k] = true
	}
	for k, s := range v.views {
		c.views[k] = s
	}
	for k, s := range v.deadView {
		c.deadView[k] = s
	}
	return c
}

func (v *leaseVisitor) Stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.DeferStmt:
		// Deferred frees run at function exit, after every use below them;
		// they neither kill nor use for the purposes of this walk.
		return
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			v.scanUses(rhs)
		}
		for _, lhs := range s.Lhs {
			switch l := orbvet.Unparen(lhs).(type) {
			case *ast.Ident:
				v.kill(v.objectOf(l))
			case *ast.SelectorExpr:
				if id, ok := v.bodySelector(l); ok {
					// Assigning to x.Body is a write, not a read: it
					// reattaches a body after ReleaseBody detached it
					// (wire.ShareBodyInto does exactly this). The carrier
					// itself must still be alive.
					delete(v.bodyDead, v.objectOf(id))
					v.scanUses(l.X)
					continue
				}
				v.scanUses(l)
			default:
				// Store through a field/index/pointer: the target expression
				// is itself a use, and an unretained view flowing into it
				// escapes the frame.
				v.scanUses(l)
			}
		}
		if tgt, ok := storeTarget(s); ok {
			for _, rhs := range s.Rhs {
				v.checkEscape(rhs, "stored through "+tgt)
			}
		}
		v.recordViews(s)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			v.scanUses(r)
			v.checkEscape(r, "returned")
		}
	case *ast.SendStmt:
		v.scanUses(s.Chan)
		v.scanUses(s.Value)
		v.checkEscape(s.Value, "sent on a channel")
	case *ast.GoStmt:
		v.scanUses(s.Call)
		for _, a := range s.Call.Args {
			v.checkEscapeCalls(a, "passed to a goroutine", true)
		}
		if lit, ok := orbvet.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			v.checkEscapeCalls(lit, "captured by a goroutine", true)
		}
	case *ast.ExprStmt:
		if c := stmtCall(s); c != nil {
			v.callStmt(c)
			return
		}
		v.scanUses(s.X)
	default:
		ast.Inspect(s, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				v.scanUses(e)
				return false
			}
			return true
		})
	}
}

// callStmt handles a statement-level call: applies its kill effect after
// scanning its arguments (so FreeMessage on an already-dead message reports
// the double free).
func (v *leaseVisitor) callStmt(c *ast.CallExpr) {
	name := orbvet.CalleeName(v.info, c)
	switch name {
	case freeMessageFn:
		v.scanUses(c)
		if len(c.Args) == 1 {
			if id, ok := orbvet.Unparen(c.Args[0]).(*ast.Ident); ok {
				v.killMessage(v.objectOf(id), "wire.FreeMessage")
			}
		}
	case releaseBodyFn:
		v.scanUses(c)
		if sel, ok := orbvet.Unparen(c.Fun).(*ast.SelectorExpr); ok {
			if id, ok := orbvet.Unparen(sel.X).(*ast.Ident); ok {
				obj := v.objectOf(id)
				v.bodyDead[obj] = true
				v.killViewsOf(obj, "ReleaseBody")
			}
		}
	default:
		v.scanUses(c)
	}
}

// killMessage marks a message variable freed and poisons its views.
func (v *leaseVisitor) killMessage(obj types.Object, how string) {
	if obj == nil {
		return
	}
	v.dead[obj] = how
	v.killViewsOf(obj, how)
}

func (v *leaseVisitor) killViewsOf(carrier types.Object, how string) {
	for view, info := range v.views {
		if info.carrier == carrier {
			v.deadView[view] = how
		}
	}
}

// kill clears all freed/view state for a reassigned variable.
func (v *leaseVisitor) kill(obj types.Object) {
	if obj == nil {
		return
	}
	delete(v.dead, obj)
	delete(v.bodyDead, obj)
	delete(v.views, obj)
	delete(v.deadView, obj)
}

// recordViews registers view aliases created by an assignment:
// v := m.Body, w := v[4:], u := v.
func (v *leaseVisitor) recordViews(s *ast.AssignStmt) {
	if len(s.Lhs) != len(s.Rhs) {
		return
	}
	for i, lhs := range s.Lhs {
		id, ok := orbvet.Unparen(lhs).(*ast.Ident)
		if !ok {
			continue
		}
		obj := v.objectOf(id)
		if obj == nil {
			continue
		}
		if info, ok := v.viewSource(s.Rhs[i]); ok {
			v.views[obj] = info
		}
	}
}

// viewSource resolves an expression to the message whose lease it views:
// m.Body, an existing view variable, or a slice/index of either.
func (v *leaseVisitor) viewSource(e ast.Expr) (viewInfo, bool) {
	switch e := orbvet.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if id, ok := v.bodySelector(e); ok {
			return viewInfo{carrier: v.objectOf(id), name: id.Name}, true
		}
	case *ast.Ident:
		if info, ok := v.views[v.objectOf(e)]; ok {
			return info, true
		}
	case *ast.SliceExpr:
		return v.viewSource(e.X)
	case *ast.IndexExpr:
		return v.viewSource(e.X)
	}
	return viewInfo{}, false
}

// bodySelector reports whether e is `m.Body` for a wire.Message variable m.
func (v *leaseVisitor) bodySelector(e *ast.SelectorExpr) (*ast.Ident, bool) {
	if e.Sel.Name != "Body" {
		return nil, false
	}
	id, ok := orbvet.Unparen(e.X).(*ast.Ident)
	if !ok {
		return nil, false
	}
	if orbvet.NamedType(v.info.TypeOf(e.X)) != wireMessageType {
		return nil, false
	}
	return id, true
}

// scanUses reports reads of dead messages, released bodies and dead views
// anywhere under e. Function literals are scanned too: a closure reading a
// variable that is already dead at the point the closure is built is as
// wrong as a direct read.
func (v *leaseVisitor) scanUses(e ast.Expr) {
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if id, ok := v.bodySelector(n); ok {
				obj := v.objectOf(id)
				if _, freed := v.dead[obj]; !freed && v.bodyDead[obj] {
					v.pass.Reportf(n.Pos(), "read of %s.Body after %s.ReleaseBody released its lease", id.Name, id.Name)
				}
			}
		case *ast.Ident:
			obj := v.objectOf(n)
			if obj == nil {
				return true
			}
			if how, ok := v.dead[obj]; ok {
				v.pass.Reportf(n.Pos(), "use of %s after %s freed it (pooled message may already be reused)", n.Name, how)
			} else if how, ok := v.deadView[obj]; ok {
				v.pass.Reportf(n.Pos(), "use of body view %s after %s on its carrier message", n.Name, how)
			}
		}
		return true
	})
}

// checkEscape reports unretained views escaping under e via the given
// route. Call expressions are not descended into: a view handed to a callee
// (`return o.getServerCallBody(..., m.Body)`, `c.dec = NewDecoder(m.Body)`)
// is the callee's business — it may copy, and the caller-side discipline
// (carrier held until Release) is not visible from this frame. Only views
// that directly flow into the escaping value are flagged.
func (v *leaseVisitor) checkEscape(e ast.Expr, route string) {
	v.checkEscapeCalls(e, route, false)
}

// checkEscapeCalls is checkEscape with control over call descent; goroutine
// capture uses intoCalls=true because any read of a view on another
// goroutine escapes the frame, callee or not.
func (v *leaseVisitor) checkEscapeCalls(e ast.Expr, route string, intoCalls bool) {
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.CallExpr); ok && !intoCalls {
			return false
		}
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if id, ok := v.bodySelector(n); ok {
				obj := v.objectOf(id)
				if _, freed := v.dead[obj]; freed || v.bodyDead[obj] {
					return false // already reported as a use-after-free
				}
				if !v.retained[obj] {
					v.pass.Reportf(n.Pos(), "lease-backed view %s.Body %s without %s.RetainBody — the lease can be recycled under the reader", id.Name, route, id.Name)
					return false
				}
			}
		case *ast.Ident:
			obj := v.objectOf(n)
			if _, dead := v.deadView[obj]; dead {
				return true // already reported as a use-after-free
			}
			if info, ok := v.views[obj]; ok && !v.retained[info.carrier] {
				v.pass.Reportf(n.Pos(), "lease-backed view %s (of %s.Body) %s without %s.RetainBody — the lease can be recycled under the reader", n.Name, info.name, route, info.name)
			}
		}
		return true
	})
}

// storeTarget describes an assignment whose left side writes through memory
// that outlives the frame (field, index, or pointer dereference).
func storeTarget(s *ast.AssignStmt) (string, bool) {
	for _, lhs := range s.Lhs {
		switch orbvet.Unparen(lhs).(type) {
		case *ast.SelectorExpr:
			return "a field", true
		case *ast.IndexExpr:
			return "an element", true
		case *ast.StarExpr:
			return "a pointer", true
		}
	}
	return "", false
}

func (v *leaseVisitor) objectOf(id *ast.Ident) types.Object {
	if obj := v.info.Uses[id]; obj != nil {
		return obj
	}
	return v.info.Defs[id]
}

// retainedMessages collects every message variable with a RetainBody call
// anywhere in the body.
func retainedMessages(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	eachCall(body, func(c *ast.CallExpr) {
		if orbvet.CalleeName(info, c) != retainBodyFn {
			return
		}
		sel, ok := orbvet.Unparen(c.Fun).(*ast.SelectorExpr)
		if !ok {
			return
		}
		if id, ok := orbvet.Unparen(sel.X).(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil {
				out[obj] = true
			}
		}
	})
	return out
}
