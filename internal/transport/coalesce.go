package transport

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/wire"
)

// This file implements write coalescing: a bounded queue in front of one
// connection's write side, drained by a dedicated flusher goroutine that
// emits whatever has accumulated as a single gathered write (SendBatch →
// writev on TCP). Under N concurrent pipelined callers this collapses ~N
// syscalls into ~1; with a single caller a direct-write fast path bypasses
// the queue entirely so the latency tax stays marginal. See DESIGN.md §9.

// CoalesceConfig tunes a Coalescer. The zero value selects the defaults.
type CoalesceConfig struct {
	// MaxFrames bounds both the queue depth and the number of frames in one
	// gathered write. Default 64.
	MaxFrames int
	// MaxBytes bounds the (estimated) payload bytes in one gathered write;
	// a batch always admits at least one frame. Default 256 KiB.
	MaxBytes int
	// Linger is how long the flusher waits after finding the queue non-empty
	// before draining, trading latency for batch size. Microseconds are the
	// sensible scale; the default 0 drains immediately — concurrent callers
	// still batch because they enqueue while the previous write is in
	// flight.
	Linger time.Duration
}

// Defaults for CoalesceConfig zero fields.
const (
	defaultCoalesceFrames = 64
	defaultCoalesceBytes  = 256 << 10
)

// ErrNotSent is returned for frames the coalescer never attempted to write:
// the queue was drained by shutdown or a prior batch's failure. The frame
// cannot have reached the peer, so retrying is always safe.
var ErrNotSent = errors.New("transport: frame not sent")

// ErrFlushFailed is returned (wrapped around the I/O error) for frames that
// were part of a gathered write that failed. Frames earlier in the batch may
// have reached the peer — and on a partial write so may a prefix of this
// frame — so the outcome is ambiguous.
var ErrFlushFailed = errors.New("transport: gathered write failed")

// coalesceEntry is one queued frame awaiting its batch.
type coalesceEntry struct {
	m    *wire.Message
	done chan error // exactly one send per enqueue
}

var entryPool = sync.Pool{
	New: func() any { return &coalesceEntry{done: make(chan error, 1)} },
}

// Coalescer fronts one Conn's write side with a flusher-drained queue. Send
// blocks until the frame is on the wire (or has failed), so callers keep
// their existing synchronous semantics. A Coalescer is poisoned by the first
// write error: the stream's framing is unknown past that point.
type Coalescer struct {
	c   Conn
	bs  BatchSender // c's gathered-write surface, nil if unsupported
	cfg CoalesceConfig

	mu       sync.Mutex
	notEmpty sync.Cond // queue went non-empty, or closed
	notFull  sync.Cond // queue has room, or closed
	queue    []*coalesceEntry
	writing  bool // a direct writer or the flusher owns the write side
	closed   bool
	cause    error       // first failure, nil on clean Close
	down     atomic.Bool // mirrors closed, readable without the mutex

	done chan struct{} // flusher exited
}

// NewCoalescer starts a coalescing writer over c.
func NewCoalescer(c Conn, cfg CoalesceConfig) *Coalescer {
	if cfg.MaxFrames <= 0 {
		cfg.MaxFrames = defaultCoalesceFrames
	}
	if cfg.MaxBytes <= 0 {
		cfg.MaxBytes = defaultCoalesceBytes
	}
	q := &Coalescer{c: c, cfg: cfg, done: make(chan struct{})}
	q.bs, _ = c.(BatchSender)
	q.notEmpty.L = &q.mu
	q.notFull.L = &q.mu
	go q.run()
	return q
}

// Send writes m through the coalescer, blocking until the frame has been
// written or has failed. Errors: the underlying Send error on the direct
// path, ErrFlushFailed (wrapped) if m's batch failed, ErrNotSent if m was
// still queued when the coalescer shut down.
func (q *Coalescer) Send(m *wire.Message) error { return q.send(m, false) }

// SendBatched is Send minus the direct-write fast path: the frame always
// goes through the queue, even when the write side is idle. Callers use it
// as a group-commit hint — when they know more frames are imminent (other
// calls in flight on the same connection, other dispatch workers about to
// reply), skipping the direct write lets the flusher gather them into one
// writev. This is what forms batches on a single-CPU scheduler, where
// non-blocking sends never overlap and the queue would otherwise always
// look empty.
func (q *Coalescer) SendBatched(m *wire.Message) error { return q.send(m, true) }

func (q *Coalescer) send(m *wire.Message, batched bool) error {
	q.mu.Lock()
	if q.closed {
		err := q.notSentLocked()
		q.mu.Unlock()
		return err
	}
	// Fast path: nothing queued and the write side idle — write directly,
	// skipping the enqueue/wakeup round trip. This is what keeps the
	// single-caller latency tax under the 10% budget.
	if !batched && len(q.queue) == 0 && !q.writing {
		q.writing = true
		q.mu.Unlock()
		err := q.c.Send(m)
		q.mu.Lock()
		q.writing = false
		if err != nil {
			q.failLocked(err)
		} else if len(q.queue) > 0 {
			q.notEmpty.Signal()
		}
		q.mu.Unlock()
		return err
	}
	for !q.closed && len(q.queue) >= q.cfg.MaxFrames {
		q.notFull.Wait()
	}
	if q.closed {
		err := q.notSentLocked()
		q.mu.Unlock()
		return err
	}
	e := entryPool.Get().(*coalesceEntry)
	e.m = m
	q.queue = append(q.queue, e)
	if len(q.queue) == 1 {
		q.notEmpty.Signal()
	}
	q.mu.Unlock()
	err := <-e.done
	e.m = nil
	entryPool.Put(e)
	return err
}

// Close shuts the coalescer down: queued-but-unwritten frames fail with
// ErrNotSent and the flusher exits. The underlying Conn is not closed.
func (q *Coalescer) Close() error {
	q.mu.Lock()
	if !q.closed {
		q.failLocked(nil)
	}
	q.mu.Unlock()
	<-q.done
	return nil
}

// Err returns the write failure that poisoned the coalescer — nil while it
// is healthy, and nil after a clean Close. The mux pool consults it so a
// connection whose write side died is replaced even before the demux reader
// observes the (asynchronous) read-side failure.
func (q *Coalescer) Err() error {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.cause
}

// dead reports whether the coalescer has shut down (poisoned or cleanly
// closed) without taking the mutex — this sits on the pool's per-call path,
// where a lock would contend with the flusher and every sender.
func (q *Coalescer) dead() bool { return q.down.Load() }

// notSentLocked builds the error for a frame that was never attempted.
func (q *Coalescer) notSentLocked() error {
	if q.cause != nil {
		return fmt.Errorf("%w: %v", ErrNotSent, q.cause)
	}
	return ErrNotSent
}

// failLocked poisons the coalescer: records the cause, fails every queued
// entry with ErrNotSent (their frames were never attempted, so they are safe
// to retry) and wakes everyone. Callers hold q.mu.
func (q *Coalescer) failLocked(cause error) {
	q.closed = true
	q.down.Store(true)
	if q.cause == nil {
		q.cause = cause
	}
	err := q.notSentLocked()
	for i, e := range q.queue {
		e.done <- err
		q.queue[i] = nil
	}
	q.queue = q.queue[:0]
	q.notEmpty.Broadcast()
	q.notFull.Broadcast()
}

// frameOverhead approximates per-frame header bytes for the MaxBytes budget
// (the exact size is protocol-dependent and not worth an extra encode).
const frameOverhead = 64

// run is the flusher: it sleeps until frames accumulate, optionally lingers,
// then drains up to the frame/byte budget into one gathered write and
// resolves each frame's waiter.
func (q *Coalescer) run() {
	defer close(q.done)
	var batch []*coalesceEntry
	var msgs []*wire.Message
	for {
		q.mu.Lock()
		// Wait for work AND for the write side to be free: a direct-path
		// writer may be mid-Send, and the write side is single-owner (the
		// faultConn wrapper counts sends un-locked on that basis). Frames
		// arriving during a direct write simply accumulate into the next
		// batch — the direct writer signals notEmpty when it finishes.
		for (len(q.queue) == 0 || q.writing) && !q.closed {
			q.notEmpty.Wait()
		}
		if q.closed {
			// failLocked already drained the queue.
			q.mu.Unlock()
			return
		}
		if q.cfg.Linger > 0 && len(q.queue) < q.cfg.MaxFrames {
			q.mu.Unlock()
			time.Sleep(q.cfg.Linger)
			q.mu.Lock()
			if q.closed {
				q.mu.Unlock()
				return
			}
		}
		// Group-commit accumulation: senders that chose the queued path are
		// parked one wakeup away from enqueueing the frames we want in THIS
		// batch. Yield the processor while the queue is still growing and
		// cut the batch only once it stabilizes (or fills). Unlike a linger
		// sleep this costs scheduler round trips, not wall-clock: on an idle
		// machine a yield is ~100ns, and on a saturated single processor it
		// is exactly what lets the remaining callers run and enqueue.
		for len(q.queue) < q.cfg.MaxFrames {
			n := len(q.queue)
			q.mu.Unlock()
			runtime.Gosched()
			q.mu.Lock()
			if q.closed {
				q.mu.Unlock()
				return
			}
			if len(q.queue) <= n {
				break // stable: everyone with a frame ready has enqueued
			}
		}
		// Cut a batch honouring both budgets (always at least one frame).
		take, bytes := 0, 0
		for take < len(q.queue) && take < q.cfg.MaxFrames {
			sz := len(q.queue[take].m.Body) + frameOverhead
			if take > 0 && bytes+sz > q.cfg.MaxBytes {
				break
			}
			bytes += sz
			take++
		}
		batch = append(batch[:0], q.queue[:take]...)
		rem := copy(q.queue, q.queue[take:])
		for i := rem; i < len(q.queue); i++ {
			q.queue[i] = nil
		}
		q.queue = q.queue[:rem]
		q.writing = true
		q.notFull.Broadcast()
		q.mu.Unlock()

		msgs = msgs[:0]
		for _, e := range batch {
			msgs = append(msgs, e.m)
		}
		var err error
		switch {
		case len(msgs) == 1:
			err = q.c.Send(msgs[0])
		case q.bs != nil:
			err = q.bs.SendBatch(msgs)
		default:
			for _, m := range msgs {
				if err = q.c.Send(m); err != nil {
					break
				}
			}
		}
		for i, e := range batch {
			if err == nil {
				e.done <- nil
			} else {
				e.done <- fmt.Errorf("%w: %v", ErrFlushFailed, err)
			}
			batch[i] = nil
		}
		q.mu.Lock()
		q.writing = false
		if err != nil {
			q.failLocked(err)
			q.mu.Unlock()
			return
		}
		q.mu.Unlock()
	}
}
