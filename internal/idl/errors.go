package idl

import (
	"errors"
	"fmt"
	"strings"
)

// Error is a diagnostic tied to a source position.
type Error struct {
	Pos Pos
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string {
	return fmt.Sprintf("%s: %s", e.Pos, e.Msg)
}

// ErrorList accumulates diagnostics produced by the lexer, parser and
// resolver. A nil or empty list means success.
type ErrorList []*Error

// Add appends a new diagnostic at pos.
func (l *ErrorList) Add(pos Pos, format string, args ...any) {
	*l = append(*l, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

// Error implements the error interface by joining the first few diagnostics.
func (l ErrorList) Error() string {
	switch len(l) {
	case 0:
		return "no errors"
	case 1:
		return l[0].Error()
	}
	var b strings.Builder
	for i, e := range l {
		if i > 0 {
			b.WriteString("\n")
		}
		if i == 8 {
			fmt.Fprintf(&b, "... and %d more errors", len(l)-i)
			break
		}
		b.WriteString(e.Error())
	}
	return b.String()
}

// Err returns the list as an error, or nil if it is empty.
func (l ErrorList) Err() error {
	if len(l) == 0 {
		return nil
	}
	return l
}

// ErrNotFound is returned by lookup helpers when a scoped name does not
// resolve to any declaration.
var ErrNotFound = errors.New("idl: name not found")
