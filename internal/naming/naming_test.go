package naming

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/demo"
	"repro/internal/gen/media"
	gen "repro/internal/gen/naming"
	"repro/internal/orb"
	"repro/internal/wire"
)

// startNaming serves a naming context and returns a remote client for it.
func startNaming(t *testing.T, proto wire.Protocol) (gen.HdContext, *Context) {
	t.Helper()
	server := orb.New(orb.Options{Protocol: proto})
	if err := server.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { server.Shutdown() })
	ref, impl, err := Serve(server)
	if err != nil {
		t.Fatal(err)
	}
	client := orb.New(orb.Options{Protocol: proto})
	t.Cleanup(func() { client.Shutdown() })
	ctx, err := Connect(client, ref)
	if err != nil {
		t.Fatal(err)
	}
	return ctx, impl
}

func mustRef(t *testing.T, s string) orb.ObjectRef {
	t.Helper()
	ref, err := orb.ParseRef(s)
	if err != nil {
		t.Fatal(err)
	}
	return ref
}

func TestBindResolveUnbind(t *testing.T) {
	for _, proto := range []wire.Protocol{wire.Text, wire.CDR} {
		t.Run(proto.Name(), func(t *testing.T) {
			ctx, _ := startNaming(t, proto)
			ref := mustRef(t, "@tcp:h:1#42#IDL:X:1.0")

			if err := ctx.Bind("player", ref); err != nil {
				t.Fatal(err)
			}
			got, err := ctx.Resolve("player")
			if err != nil {
				t.Fatal(err)
			}
			if got != ref {
				t.Errorf("Resolve = %v, want %v", got, ref)
			}

			// Duplicate bind raises AlreadyBound.
			err = ctx.Bind("player", ref)
			var re *orb.RemoteError
			if !errors.As(err, &re) || re.Status != wire.StatusUserException ||
				!strings.Contains(re.Msg, "AlreadyBound") {
				t.Errorf("duplicate bind = %v", err)
			}

			// Rebind overwrites.
			ref2 := mustRef(t, "@tcp:h:2#43#IDL:Y:1.0")
			if err := ctx.Rebind("player", ref2); err != nil {
				t.Fatal(err)
			}
			if got, _ := ctx.Resolve("player"); got != ref2 {
				t.Error("rebind did not overwrite")
			}

			if err := ctx.Unbind("player"); err != nil {
				t.Fatal(err)
			}
			_, err = ctx.Resolve("player")
			if !errors.As(err, &re) || !strings.Contains(re.Msg, "NotFound") {
				t.Errorf("resolve after unbind = %v", err)
			}
			if err := ctx.Unbind("player"); err == nil {
				t.Error("unbind of unbound name should fail")
			}
		})
	}
}

func TestListAndSize(t *testing.T) {
	ctx, _ := startNaming(t, wire.Text)
	for _, n := range []string{"charlie", "alpha", "bravo"} {
		if err := ctx.Bind(n, mustRef(t, "@tcp:h:1#1#IDL:T:1.0")); err != nil {
			t.Fatal(err)
		}
	}
	names, err := ctx.List()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(names, ",") != "alpha,bravo,charlie" {
		t.Errorf("List = %v", names)
	}
	if n, err := ctx.GetSize(); err != nil || n != 3 {
		t.Errorf("GetSize = %d, %v", n, err)
	}
}

func TestConcurrentClients(t *testing.T) {
	ctx, impl := startNaming(t, wire.CDR)
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				name := fmt.Sprintf("svc-%d-%d", g, i)
				if err := ctx.Bind(name, mustRef(t, "@tcp:h:1#9#IDL:T:1.0")); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if n, _ := impl.GetSize(); n != 60 {
		t.Errorf("size = %d, want 60", n)
	}
}

// TestDiscoveryFlow is the deployment story: a media server binds its
// session into the name service; a client that knows only the naming
// reference resolves the name, then the typed object, and calls it.
func TestDiscoveryFlow(t *testing.T) {
	// One server process hosts both the naming context and the session.
	server, sessionRef, _, err := demo.Serve(orb.Options{Protocol: wire.Text}, "discovered")
	if err != nil {
		t.Fatal(err)
	}
	defer server.Shutdown()
	namingRef, _, err := Serve(server)
	if err != nil {
		t.Fatal(err)
	}

	// The server binds its own session under a well-known name,
	// remotely, through the same public interface clients use.
	bootstrapClient := orb.New(orb.Options{Protocol: wire.Text})
	defer bootstrapClient.Shutdown()
	ctx, err := Connect(bootstrapClient, namingRef)
	if err != nil {
		t.Fatal(err)
	}
	if err := ctx.Bind("media/session-main", sessionRef); err != nil {
		t.Fatal(err)
	}

	// A fresh client knows only namingRef.
	client := demo.Connect(orb.Options{Protocol: wire.Text})
	defer client.Shutdown()
	ctx2, err := Connect(client, namingRef)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := ctx2.Resolve("media/session-main")
	if err != nil {
		t.Fatal(err)
	}
	obj, err := client.Resolve(ref)
	if err != nil {
		t.Fatal(err)
	}
	session := obj.(media.HdSession)
	if name, err := session.GetName(); err != nil || name != "discovered" {
		t.Errorf("GetName via discovery = %q, %v", name, err)
	}
}
