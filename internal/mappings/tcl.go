package mappings

import (
	"fmt"
	"strings"

	"repro/internal/est"
	"repro/internal/jeeves"
)

// The IDL-to-Tcl mapping of §4.2 and Fig. 10 of the paper: the authors
// "utilized our template-driven IDL compiler to generate an IDL-tcl mapping
// that suited the existing tcl code" of a management GUI, against a 700-line
// Tcl ORB. Generated stubs are [incr Tcl] classes inheriting Stub; each
// method obtains a request call from the connector, inserts its arguments,
// sends, and extracts any result. Skeleton methods receive the call object,
// extract arguments, and invoke the tied implementation object ($pb_obj_).

const tclTemplate = `@foreach interfaceList -map interfaceName Tcl::MapClassName
@openfile ${interfaceName}.tcl
if {[info vars "${repoID}"] != ""} return
set ${repoID} 1
BOA::addIdlMapping ::${interfaceName} "${repoID}"
@foreach enumList
@foreach memberList
set ${memberName} ${memberOrdinal}
@end memberList
@end enumList

class ${interfaceName}Stub {
@if ${hasBases}
@set inh
@foreach inheritedList -ifMore ' ' -map inheritedName Tcl::MapClassName
@set inh ${inh}${inheritedName}Stub${ifMore}
@end inheritedList
  inherit ${inh}
@else
  inherit Stub
@fi
  constructor {ior connector} {
    Stub::constructor $ior $connector
  } {}
@foreach methodList -mapto retGet returnKind Tcl::MapExtractOp
@set args
@foreach paramList -ifMore ' '
@set args ${args}${paramName}${ifMore}
@end paramList
  public method ${methodName} {${args}} {
    set c [$pb_connector_ getRequestCall $this "${methodName}" 0]
@foreach paramList -mapto putOp paramKind Tcl::MapInsertOp
    $c ${putOp} $${paramName}
@end paramList
    $c send
@if ${returnKind} == void
    # void return
    $c release
  }
@else
    set _ret [$c ${retGet}]
    $c release
    return $_ret
  }
@fi
@end methodList
@foreach attributeList -mapto attGet attributeKind Tcl::MapExtractOp
  public method _get_${attributeName} {} {
    set c [$pb_connector_ getRequestCall $this "_get_${attributeName}" 0]
    $c send
    set _ret [$c ${attGet}]
    $c release
    return $_ret
  }
@end attributeList
}

class ${interfaceName}Skel {
@if ${hasBases}
@set inh
@foreach inheritedList -ifMore ' ' -map inheritedName Tcl::MapClassName
@set inh ${inh}${inheritedName}Skel${ifMore}
@end inheritedList
  inherit ${inh}
@else
  inherit Skel
@fi
  constructor {implObj} {
    Skel::constructor $implObj
  } {}
@foreach methodList -mapto retPut returnKind Tcl::MapInsertOp
  public method ${methodName} {c} {
@set args
@foreach paramList -ifMore ' ' -mapto getOp paramKind Tcl::MapExtractOp
    set ${paramName} [$c ${getOp}]
@set args ${args}$${paramName}${ifMore}
@end paramList
@if ${returnKind} == void
    $pb_obj_ ${methodName} ${args}
    # void return
  }
@else
    set _ret [$pb_obj_ ${methodName} ${args}]
    $c ${retPut} $_ret
  }
@fi
@end methodList
@foreach attributeList -mapto attPut attributeKind Tcl::MapInsertOp -mapto accName attributeName Tcl::MapAccessor
  public method _get_${attributeName} {c} {
    $c ${attPut} [$pb_obj_ cget -${attributeName}]
  }
@end attributeList
}
@end interfaceList
`

// tclFuncs builds the map functions of the Tcl mapping.
func tclFuncs(_ *est.Node) jeeves.FuncMap {
	mapClassName := func(v string, _ *est.Node) (string, error) {
		if v == "" {
			return "", fmt.Errorf("empty name")
		}
		return lastComponent(v), nil
	}
	suffix := func(kind string) string {
		switch kind {
		case "boolean":
			return "Boolean"
		case "char", "wchar":
			return "Char"
		case "octet", "short", "ushort", "long", "ulong",
			"longlong", "ulonglong", "enum":
			return "Long"
		case "float", "double", "longdouble":
			return "Double"
		case "string", "wstring":
			return "String"
		case "objref":
			return "Object"
		default:
			return "Value"
		}
	}
	mapInsertOp := func(v string, _ *est.Node) (string, error) {
		return "insert" + suffix(v), nil
	}
	mapExtractOp := func(v string, _ *est.Node) (string, error) {
		if v == "void" {
			return "", nil
		}
		return "extract" + suffix(v), nil
	}
	mapAccessor := func(v string, _ *est.Node) (string, error) {
		return capitalize(v), nil
	}
	return jeeves.FuncMap{
		"Tcl::MapClassName": mapClassName,
		"Tcl::MapInsertOp":  mapInsertOp,
		"Tcl::MapExtractOp": mapExtractOp,
		"Tcl::MapAccessor":  mapAccessor,
	}
}

// Tcl is the IDL-to-Tcl mapping (Fig. 10 of the paper).
var Tcl = &Mapping{
	Name:        "tcl",
	Description: "Tcl mapping for the paper's custom Tcl ORB: [incr Tcl] stub/skeleton classes, insert/extract marshaling",
	Templates:   map[string]string{"main": tclTemplate},
	Funcs:       tclFuncs,
}

func init() { Register(Tcl) }

// TclLoC counts the non-blank, non-comment lines of a generated Tcl file,
// used by the C5 experiment to compare against the paper's "700 lines of
// tcl code" data point.
func TclLoC(src string) int {
	n := 0
	for _, line := range strings.Split(src, "\n") {
		t := strings.TrimSpace(line)
		if t != "" && !strings.HasPrefix(t, "#") {
			n++
		}
	}
	return n
}
