// Package orb implements the HeidiRMI object request broker runtime of §3
// of "Customizing IDL Mappings and ORB Protocols": stringified object
// references, Call objects for marshaling remote method invocations
// (Fig. 4), server-side dispatching through delegation skeletons with
// recursive dispatch up the IDL inheritance graph (Fig. 5), connection,
// stub and skeleton caching, pass-by-reference with lazily created
// skeletons, and pass-by-value for incopy parameters backed by
// HdSerializable.
//
// The wire protocol and dispatch strategy are configuration, not code —
// the customization point the paper's template compiler targets: the same
// generated bindings run over the human-readable text protocol or the
// binary CDR protocol, and dispatch via linear string comparison, binary
// search, or a hash table (§2's optimization discussion, benchmark C1).
package orb

import (
	"fmt"
	"strings"
)

// ObjectRef is a parsed HeidiRMI object reference. Its stringified form is
// the paper's three-part format (§3.1): a bootstrap URL
// (protocol-hostname-port), an object identifier unique within the address
// space, and the type's repository ID:
//
//	@tcp:galaxy.nec.com:1234#9876#IDL:Heidi/A:1.0
type ObjectRef struct {
	// Proto is the transport scheme ("tcp", "inproc").
	Proto string
	// Addr is the bootstrap endpoint ("galaxy.nec.com:1234").
	Addr string
	// ObjectID identifies the object within its address space.
	ObjectID string
	// TypeID is the repository ID used to select stubs and skeletons.
	TypeID string
}

// String renders the stringified reference.
func (r ObjectRef) String() string {
	return "@" + r.Proto + ":" + r.Addr + "#" + r.ObjectID + "#" + r.TypeID
}

// IsNil reports whether the reference is the zero (nil object) reference.
func (r ObjectRef) IsNil() bool { return r == ObjectRef{} }

// NilRefString is the wire spelling of a nil object reference.
const NilRefString = "@nil"

// ParseRef parses a stringified object reference.
func ParseRef(s string) (ObjectRef, error) {
	if s == NilRefString {
		return ObjectRef{}, nil
	}
	if !strings.HasPrefix(s, "@") {
		return ObjectRef{}, fmt.Errorf("orb: object reference %q does not start with '@'", s)
	}
	rest := s[1:]
	colon := strings.IndexByte(rest, ':')
	if colon <= 0 {
		return ObjectRef{}, fmt.Errorf("orb: object reference %q has no protocol", s)
	}
	proto := rest[:colon]
	rest = rest[colon+1:]
	hash1 := strings.IndexByte(rest, '#')
	if hash1 < 0 {
		return ObjectRef{}, fmt.Errorf("orb: object reference %q has no object identifier", s)
	}
	addr := rest[:hash1]
	rest = rest[hash1+1:]
	hash2 := strings.IndexByte(rest, '#')
	if hash2 < 0 {
		return ObjectRef{}, fmt.Errorf("orb: object reference %q has no type information", s)
	}
	oid := rest[:hash2]
	typeID := rest[hash2+1:]
	if addr == "" || oid == "" || typeID == "" {
		return ObjectRef{}, fmt.Errorf("orb: object reference %q has empty components", s)
	}
	return ObjectRef{Proto: proto, Addr: addr, ObjectID: oid, TypeID: typeID}, nil
}

// RefHolder is implemented by generated stubs: it exposes the remote
// reference a stub proxies for, so a stub received as a parameter can be
// forwarded without re-exporting.
type RefHolder interface {
	HdRef() ObjectRef
}
