package orb

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

func noop(*ServerCall) error { return nil }

func TestMethodTableStrategiesAgree(t *testing.T) {
	// All three strategies must resolve identically on the same table —
	// the correctness precondition for benchmark C1.
	names := []string{"open", "close", "play", "stop", "pause", "seek", "list", "ping"}
	for _, s := range []Strategy{StrategyLinear, StrategyBinary, StrategyHash} {
		tb := NewMethodTable("IDL:T:1.0").SetStrategy(s)
		for _, n := range names {
			n := n
			tb.Register(n, func(c *ServerCall) error { return fmt.Errorf("%s", n) })
		}
		tb.SetStrategy(s)
		for _, n := range names {
			h, ok := tb.Resolve(n)
			if !ok {
				t.Fatalf("%s: method %q not found", s, n)
			}
			if got := h(nil).Error(); got != n {
				t.Errorf("%s: Resolve(%q) found handler for %q", s, n, got)
			}
		}
		if _, ok := tb.Resolve("missing"); ok {
			t.Errorf("%s: found nonexistent method", s)
		}
	}
}

// TestStrategyEquivalenceProperty: for random method sets and probes, all
// strategies agree on hit/miss and on which handler is selected.
func TestStrategyEquivalenceProperty(t *testing.T) {
	f := func(raw []string, probeIdx uint8, probeRaw string) bool {
		sanitize := func(s string) string {
			s = strings.Map(func(r rune) rune {
				if r >= 'a' && r <= 'z' {
					return r
				}
				return 'a' + (r&0x7)%26
			}, s)
			if s == "" {
				s = "m"
			}
			if len(s) > 16 {
				s = s[:16]
			}
			return s
		}
		seen := map[string]bool{}
		var names []string
		for _, r := range raw {
			n := sanitize(r)
			if !seen[n] {
				seen[n] = true
				names = append(names, n)
			}
		}
		tables := make([]*MethodTable, 3)
		for i, s := range []Strategy{StrategyLinear, StrategyBinary, StrategyHash} {
			tb := NewMethodTable("IDL:P:1.0")
			for _, n := range names {
				n := n
				tb.Register(n, func(*ServerCall) error { return fmt.Errorf("%s", n) })
			}
			tb.SetStrategy(s)
			tables[i] = tb
		}
		var probe string
		if len(names) > 0 && int(probeIdx)%2 == 0 {
			probe = names[int(probeIdx)%len(names)]
		} else {
			probe = sanitize(probeRaw) + "_miss"
		}
		h0, ok0 := tables[0].Resolve(probe)
		h1, ok1 := tables[1].Resolve(probe)
		h2, ok2 := tables[2].Resolve(probe)
		if ok0 != ok1 || ok1 != ok2 {
			return false
		}
		if !ok0 {
			return true
		}
		return h0(nil).Error() == h1(nil).Error() && h1(nil).Error() == h2(nil).Error()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestRecursiveDispatch reproduces Fig. 5's delegation: A_skel tries its own
// methods, then delegates to S_skel; with multiple bases, in order.
func TestRecursiveDispatch(t *testing.T) {
	var trace []string
	mk := func(typeID string, methods ...string) *MethodTable {
		tb := NewMethodTable(typeID)
		for _, m := range methods {
			m := m
			tb.Register(m, func(*ServerCall) error {
				trace = append(trace, typeID+"."+m)
				return nil
			})
		}
		return tb
	}
	node := mk("IDL:Node:1.0", "ping")
	source := mk("IDL:Source:1.0", "open").Inherit(node)
	sink := mk("IDL:Sink:1.0", "configure").Inherit(node)
	session := mk("IDL:Session:1.0", "play").Inherit(source).Inherit(sink)

	cases := []struct {
		method string
		want   string
	}{
		{"play", "IDL:Session:1.0.play"},        // own method
		{"open", "IDL:Source:1.0.open"},         // first base
		{"configure", "IDL:Sink:1.0.configure"}, // second base
		{"ping", "IDL:Node:1.0.ping"},           // diamond: via first base
	}
	for _, c := range cases {
		trace = nil
		handled, err := session.Dispatch(c.method, nil)
		if err != nil || !handled {
			t.Fatalf("Dispatch(%q) = %v, %v", c.method, handled, err)
		}
		if len(trace) != 1 || trace[0] != c.want {
			t.Errorf("Dispatch(%q) ran %v, want [%s]", c.method, trace, c.want)
		}
	}

	handled, _ := session.Dispatch("nope", nil)
	if handled {
		t.Error("unknown method reported handled")
	}
}

// TestOverrideShadowsBase: a derived interface redeclaring a base method
// dispatches to the derived handler (own methods are tried first, Fig. 5).
func TestOverrideShadowsBase(t *testing.T) {
	got := ""
	base := NewMethodTable("IDL:B:1.0").Register("m", func(*ServerCall) error {
		got = "base"
		return nil
	})
	derived := NewMethodTable("IDL:D:1.0").Register("m", func(*ServerCall) error {
		got = "derived"
		return nil
	}).Inherit(base)
	if handled, _ := derived.Dispatch("m", nil); !handled || got != "derived" {
		t.Errorf("dispatch hit %q, want derived", got)
	}
}

func TestDuplicateRegisterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate Register should panic")
		}
	}()
	NewMethodTable("t").Register("m", noop).Register("m", noop)
}

// TestSetStrategyLeavesBasesAlone: base tables are shared between derived
// interfaces, so SetStrategy on one derived table must not clobber the
// strategy another dispatcher sees. The strategy travels with the dispatch
// instead: inherited methods still resolve using the dispatching table's
// strategy.
func TestSetStrategyLeavesBasesAlone(t *testing.T) {
	base := NewMethodTable("b").Register("x", noop)
	top := NewMethodTable("t").Inherit(base)
	other := NewMethodTable("o").Inherit(base).SetStrategy(StrategyBinary)

	top.SetStrategy(StrategyHash)
	if got := base.Strategy(); got != StrategyLinear {
		t.Errorf("SetStrategy on derived table mutated shared base: %s", got)
	}
	if got := other.Strategy(); got != StrategyBinary {
		t.Errorf("sibling table strategy clobbered: %s", got)
	}
	// Inherited lookups still work under every root strategy.
	for _, s := range []Strategy{StrategyLinear, StrategyBinary, StrategyHash} {
		top.SetStrategy(s)
		if _, ok := top.Resolve("x"); !ok {
			t.Errorf("strategy %s: inherited method x not resolved", s)
		}
		if handled, err := top.Dispatch("x", nil); !handled || err != nil {
			t.Errorf("strategy %s: Dispatch(x) = %v, %v", s, handled, err)
		}
	}
}

func TestMethodsAndBases(t *testing.T) {
	base := NewMethodTable("b")
	tb := NewMethodTable("t").Register("b", noop).Register("a", noop).Inherit(base)
	if got := strings.Join(tb.Methods(), ","); got != "b,a" {
		t.Errorf("Methods() = %s (registration order expected)", got)
	}
	if len(tb.Bases()) != 1 || tb.Bases()[0] != base {
		t.Error("Bases()")
	}
	if tb.TypeID() != "t" {
		t.Error("TypeID()")
	}
	if StrategyLinear.String() != "linear" || StrategyBinary.String() != "binary" || StrategyHash.String() != "hash" {
		t.Error("Strategy.String()")
	}
}
