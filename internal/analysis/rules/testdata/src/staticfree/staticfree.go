// Fixture for the staticfree analyzer.
package staticfree

import "repro/internal/wire"

func handBuilt() *wire.Message {
	return &wire.Message{Type: wire.MsgRequest} // flagged: pool would adopt it
}

func handBuiltValue() wire.Message {
	return wire.Message{Method: "echo"} // flagged: same, by value
}

func properlyStatic() *wire.Message {
	return &wire.Message{Type: wire.MsgRequest, Static: true} // ok
}

func pooled() *wire.Message {
	return wire.NewMessage() // ok: pool-issued
}
