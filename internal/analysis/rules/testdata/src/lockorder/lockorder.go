// Fixture for the lockorder analyzer: an ABBA pair, a re-lock, I/O under
// a lock, and a transitive acquisition through a summarized callee.
package lockorder

import (
	"net"
	"sync"
	"time"
)

type registry struct {
	mu    sync.Mutex
	conns map[string]net.Conn
}

type pool struct {
	mu sync.Mutex
}

func abOrder(r *registry, p *pool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	p.mu.Lock() // edge registry.mu -> pool.mu
	p.mu.Unlock()
}

func baOrder(r *registry, p *pool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	r.mu.Lock() // flagged (cycle): opposite order of abOrder
	r.mu.Unlock()
}

func relock(r *registry) {
	r.mu.Lock()
	r.mu.Lock() // flagged: sync.Mutex is not reentrant
	r.mu.Unlock()
	r.mu.Unlock()
}

func dialUnderLock(r *registry, addr string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, err := net.Dial("tcp", addr) // flagged: dial pins the lock
	if err != nil {
		return err
	}
	r.conns[addr] = c
	return nil
}

func sleepUnderLock(p *pool) {
	p.mu.Lock()
	time.Sleep(time.Millisecond) // flagged: sleep pins the lock
	p.mu.Unlock()
}

func sleepOutsideLock(p *pool) {
	p.mu.Lock()
	p.mu.Unlock()
	time.Sleep(time.Millisecond) // ok: nothing held
}

func transitively(r *registry, p *pool) {
	r.mu.Lock()
	lockPool(p) // contributes the registry.mu -> pool.mu edge via summary
	r.mu.Unlock()
}

func lockPool(p *pool) {
	p.mu.Lock()
	p.mu.Unlock()
}
