package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeSpec(t *testing.T, dir, name, src string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunCleanSpecExitsZero(t *testing.T) {
	dir := t.TempDir()
	path := writeSpec(t, dir, "ok.idl", "interface I { void f(in long x); };\n")
	var out strings.Builder
	code, err := run([]string{path}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 || out.String() != "" {
		t.Errorf("clean spec: code=%d out=%q, want 0 and empty", code, out.String())
	}
}

func TestRunBadSpecExitsOne(t *testing.T) {
	dir := t.TempDir()
	path := writeSpec(t, dir, "bad.idl", "interface I { oneway void f(out long x); };\n")
	var out strings.Builder
	code, err := run([]string{path}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Errorf("bad spec: code=%d, want 1", code)
	}
	if !strings.Contains(out.String(), "[oneway-mode]") {
		t.Errorf("output %q missing oneway-mode diagnostic", out.String())
	}
}

func TestRunStrictPromotesWarnings(t *testing.T) {
	dir := t.TempDir()
	src := "interface I { void f(incopy long n); };\n"
	path := writeSpec(t, dir, "warn.idl", src)
	var out strings.Builder
	code, err := run([]string{path}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Errorf("warning-only spec without -strict: code=%d, want 0", code)
	}
	out.Reset()
	code, err = run([]string{"-strict", path}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Errorf("warning-only spec with -strict: code=%d, want 1", code)
	}
}

func TestRunJSONOutput(t *testing.T) {
	dir := t.TempDir()
	path := writeSpec(t, dir, "bad.idl", "interface I { oneway long f(); };\n")
	var out strings.Builder
	code, err := run([]string{"-json", path}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Errorf("code=%d, want 1", code)
	}
	var diags []struct {
		Pos struct {
			File string `json:"file"`
			Line int    `json:"line"`
			Col  int    `json:"col"`
		} `json:"pos"`
		Severity string `json:"severity"`
		Check    string `json:"check"`
		Msg      string `json:"msg"`
	}
	if err := json.Unmarshal([]byte(out.String()), &diags); err != nil {
		t.Fatalf("invalid JSON %q: %v", out.String(), err)
	}
	if len(diags) == 0 || diags[0].Check == "" || diags[0].Pos.Line == 0 {
		t.Errorf("JSON diagnostics incomplete: %+v", diags)
	}
}

func TestRunDirExpansionAndTemplates(t *testing.T) {
	dir := t.TempDir()
	sub := filepath.Join(dir, "nested")
	if err := os.Mkdir(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	writeSpec(t, dir, "top.idl", "interface T { void f(); };\n")
	writeSpec(t, sub, "deep.idl", "interface D { oneway long g(); };\n")

	// Plain directory: one level only, so the bad nested spec is skipped.
	var out strings.Builder
	code, err := run([]string{dir}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Errorf("dir (shallow): code=%d out=%s", code, out.String())
	}

	// dir/... recurses and finds the bad spec.
	out.Reset()
	code, err = run([]string{dir + "/..."}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 || !strings.Contains(out.String(), "deep.idl") {
		t.Errorf("dir/...: code=%d out=%s", code, out.String())
	}

	// -templates alone lints the registered mappings (all clean).
	out.Reset()
	code, err = run([]string{"-templates"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 || out.String() != "" {
		t.Errorf("-templates: code=%d out=%q, want clean", code, out.String())
	}
}

func TestRunList(t *testing.T) {
	var out strings.Builder
	code, err := run([]string{"-list"}, &out)
	if err != nil || code != 0 {
		t.Fatalf("-list: code=%d err=%v", code, err)
	}
	for _, id := range []string{"incopy-type", "oneway-result", "tmpl-var-undefined"} {
		if !strings.Contains(out.String(), id) {
			t.Errorf("-list output missing %s", id)
		}
	}
}
