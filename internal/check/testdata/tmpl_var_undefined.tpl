// Generated for ${basename}
@foreach interfaceList
class ${interfaceName} uses ${nonesuch}
@foreach methodList
  method ${methodName} -> ${retrunType}
@end
@end
