package orb

import (
	"bufio"
	"bytes"
	"strings"
	"testing"

	"repro/internal/wire"
)

// FuzzParseRef fuzzes the stringified-reference parser with raw inputs and
// with whole wire-protocol frames: a frame that decodes to a message has its
// TargetRef parsed exactly as the server loop would. Seeds cover both, so
// the corpus exercises the reference grammar and the protocol framing
// together.
func FuzzParseRef(f *testing.F) {
	refs := []string{
		"@tcp:galaxy.nec.com:1234#9876#IDL:Heidi/A:1.0",
		"@inproc:ep1#1#IDL:test/Echo:1.0",
		NilRefString,
		"@tcp:host:1#id#", // empty component
		"@:#",
		"not a ref",
		"@tcp",
		"@tcp:h:1#1#t#extra#hashes",
	}
	for _, s := range refs {
		f.Add(s)
	}
	// Wire frames carrying references, in both protocols.
	for _, p := range []wire.Protocol{wire.Text, wire.CDR} {
		var buf bytes.Buffer
		p.WriteMessage(&buf, &wire.Message{
			Type: wire.MsgRequest, RequestID: 7,
			TargetRef: "@tcp:galaxy.nec.com:1234#9876#IDL:Heidi/A:1.0",
			Method:    "echo",
		})
		f.Add(buf.String())
	}

	f.Fuzz(func(t *testing.T, s string) {
		ref, err := ParseRef(s)
		if err == nil && !ref.IsNil() {
			// Valid references round-trip: String() re-parses to the same
			// value. (The nil reference is excluded: its canonical spelling
			// is NilRefString, not the zero struct's String().)
			back, err := ParseRef(ref.String())
			if err != nil {
				t.Fatalf("round-trip of %q (%q) failed: %v", s, ref.String(), err)
			}
			if back != ref {
				t.Fatalf("round-trip of %q = %+v, want %+v", s, back, ref)
			}
		}

		// If the input frames as a wire message, its target reference goes
		// through the same parser on the dispatch path; neither protocol's
		// reader nor the parser may panic.
		for _, p := range []wire.Protocol{wire.Text, wire.CDR} {
			r := bufio.NewReader(strings.NewReader(s))
			m, err := p.ReadMessage(r)
			if err != nil || m == nil {
				continue
			}
			ParseRef(m.TargetRef)
		}
	})
}

// FuzzParseRefSet fuzzes the replica-set reference grammar: any input the
// parser accepts must re-format (every member is separator-clean by
// construction, since the parser split on the separator) and the re-formatted
// string must parse back to the identical member list.
func FuzzParseRefSet(f *testing.F) {
	seeds := []string{
		"@set|@tcp:a:1#1#IDL:X:1.0",
		"@set|@tcp:a:1#1#IDL:X:1.0|@tcp:b:1#2#IDL:X:1.0",
		"@set|@inproc:ep1#1#IDL:test/Echo:1.0|@inproc:ep2#2#IDL:test/Echo:1.0|@inproc:ep3#3#IDL:test/Echo:1.0",
		"@set|",
		"@set",
		"@set|@nil",
		"@set||",
		"@set|not a ref",
		"@tcp:a:1#1#IDL:X:1.0",
		"@set|@tcp:h:1#id#t#extra#hashes|@tcp:h:1#id#t",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		members, err := ParseRefSet(s)
		if err != nil {
			return
		}
		if len(members) == 0 {
			t.Fatalf("ParseRefSet(%q) accepted an empty set", s)
		}
		if !IsRefSet(s) {
			t.Fatalf("ParseRefSet(%q) accepted input IsRefSet rejects", s)
		}
		out, err := FormatRefSet(members)
		if err != nil {
			t.Fatalf("FormatRefSet of ParseRefSet(%q) failed: %v", s, err)
		}
		back, err := ParseRefSet(out)
		if err != nil {
			t.Fatalf("re-parse of %q (from %q) failed: %v", out, s, err)
		}
		if len(back) != len(members) {
			t.Fatalf("round-trip of %q changed member count: %d -> %d", s, len(members), len(back))
		}
		for i := range members {
			if back[i] != members[i] {
				t.Fatalf("round-trip of %q changed member %d: %+v -> %+v", s, i, members[i], back[i])
			}
		}
	})
}

// FuzzParseChannelRef fuzzes the channel-reference grammar: any input the
// parser accepts must re-format (the name is separator-clean by construction,
// since the parser split on the first separator) and the re-formatted string
// must parse back to the identical name and broker reference.
func FuzzParseChannelRef(f *testing.F) {
	seeds := []string{
		"@chan|telemetry|@tcp:a:1#7#IDL:repro/events/Channel:1.0",
		"@chan|t|@inproc:ep1#1#IDL:test/Echo:1.0",
		"@chan|",
		"@chan||",
		"@chan||@tcp:a:1#1#IDL:X:1.0",
		"@chan|name|@nil",
		"@chan|name|not a ref",
		"@chan|name",
		"@chan|a|b|@tcp:a:1#1#IDL:X:1.0",
		"@set|@tcp:a:1#1#IDL:X:1.0",
		"@tcp:a:1#1#IDL:X:1.0",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		name, ref, err := ParseChannelRef(s)
		if err != nil {
			return
		}
		if name == "" {
			t.Fatalf("ParseChannelRef(%q) accepted an empty name", s)
		}
		if ref.IsNil() {
			t.Fatalf("ParseChannelRef(%q) accepted a nil broker reference", s)
		}
		if !IsChannelRef(s) {
			t.Fatalf("ParseChannelRef(%q) accepted input IsChannelRef rejects", s)
		}
		out, err := FormatChannelRef(name, ref)
		if err != nil {
			return
			// A parsed-but-unformattable reference is possible: the parser
			// splits on the FIRST separator, so a name can never contain one,
			// but the broker reference tail may (it round-trips through
			// ParseRef, which ignores '|'). Formatting rejects those.
		}
		backName, backRef, err := ParseChannelRef(out)
		if err != nil {
			t.Fatalf("re-parse of %q (from %q) failed: %v", out, s, err)
		}
		if backName != name || backRef != ref {
			t.Fatalf("round-trip of %q changed parts: (%q, %+v) -> (%q, %+v)",
				s, name, ref, backName, backRef)
		}
	})
}
