package orb

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// RetryPolicy configures client-side retries of remote invocations. The
// zero value disables retries entirely, leaving the invocation path
// byte-identical to the un-retried HeidiRMI behavior.
//
// Retries are attempted only for failures that occur before the request
// could have been processed by the server — dial failures, send failures,
// and an EOF on the first read of a reused cached connection (the peer
// closed the idle connection while it sat in the pool). Failures after the
// request may have been processed (a lost reply) are retried only for
// oneway calls, for methods the Idempotent predicate accepts, or for calls
// explicitly marked with ClientCall.SetIdempotent.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts per call, including
	// the first; values <= 1 disable retries.
	MaxAttempts int
	// Backoff is the base delay before the second attempt; it doubles
	// per attempt with full jitter (a uniform draw from [d/2, d]).
	// Zero retries immediately.
	Backoff time.Duration
	// MaxBackoff caps the exponential growth; zero means uncapped.
	MaxBackoff time.Duration
	// Budget bounds retry amplification ORB-wide: at most Budget retry
	// tokens exist, each retry consumes one, and each successful call
	// refunds one (up to Budget). Zero means unlimited.
	Budget int
	// Idempotent opts methods into retrying ambiguous failures (the
	// request may have been processed). Nil means no method is.
	Idempotent func(method string) bool
	// Seed fixes the jitter source for deterministic tests; zero seeds
	// from the clock.
	Seed int64
}

// enabled reports whether the policy retries at all.
func (p RetryPolicy) enabled() bool { return p.MaxAttempts > 1 }

// retryState is the ORB's runtime retry bookkeeping.
type retryState struct {
	tokens int64 // remaining retry budget (atomic); unused when Budget <= 0

	jitterMu sync.Mutex
	jitter   *rand.Rand
}

func newRetryState(p RetryPolicy) *retryState {
	seed := p.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	return &retryState{
		tokens: int64(p.Budget),
		jitter: rand.New(rand.NewSource(seed)),
	}
}

// take consumes one retry token; false means the budget is exhausted and
// the failure must surface instead of retrying.
func (o *ORB) takeRetryToken() bool {
	if o.opts.Retry.Budget <= 0 {
		return true
	}
	for {
		cur := atomic.LoadInt64(&o.retry.tokens)
		if cur <= 0 {
			return false
		}
		if atomic.CompareAndSwapInt64(&o.retry.tokens, cur, cur-1) {
			return true
		}
	}
}

// refundRetryToken returns one token after a successful call, capped at the
// configured budget.
func (o *ORB) refundRetryToken() {
	budget := int64(o.opts.Retry.Budget)
	if budget <= 0 {
		return
	}
	for {
		cur := atomic.LoadInt64(&o.retry.tokens)
		if cur >= budget {
			return
		}
		if atomic.CompareAndSwapInt64(&o.retry.tokens, cur, cur+1) {
			return
		}
	}
}

// backoffSleep sleeps the exponential-with-full-jitter delay before attempt
// number attempt+1 (attempt is the 1-based attempt that just failed).
func (o *ORB) backoffSleep(attempt int) {
	pol := o.opts.Retry
	if pol.Backoff <= 0 {
		return
	}
	shift := attempt - 1
	if shift > 16 {
		shift = 16
	}
	d := pol.Backoff << shift
	if pol.MaxBackoff > 0 && d > pol.MaxBackoff {
		d = pol.MaxBackoff
	}
	if half := d / 2; half > 0 {
		o.retry.jitterMu.Lock()
		d = half + time.Duration(o.retry.jitter.Int63n(int64(half)+1))
		o.retry.jitterMu.Unlock()
	}
	time.Sleep(d)
}

// failureClass classifies one attempt's failure for the retry decision.
type failureClass int

const (
	// failNone: the attempt succeeded.
	failNone failureClass = iota
	// failSafe: the failure occurred before the request could have been
	// processed (dial/send failure, stale cached connection) — always
	// safe to retry.
	failSafe
	// failAmbiguous: the request may have been processed (reply lost);
	// retried only for oneway or idempotent calls.
	failAmbiguous
	// failFatal: never retried (shutdown, open circuit breaker).
	failFatal
)
