package main

import (
	"bytes"
	"os/exec"
	"strings"
	"testing"

	"repro/internal/demo"
	"repro/internal/orb"
)

func TestSplitWord(t *testing.T) {
	cases := []struct{ in, word, rest string }{
		{"call a b", "call", "a b"},
		{"  call   a", "call", "a"},
		{"single", "single", ""},
		{"", "", ""},
	}
	for _, c := range cases {
		w, r := splitWord(c.in)
		if w != c.word || r != c.rest {
			t.Errorf("splitWord(%q) = %q, %q", c.in, w, r)
		}
	}
}

// TestShellSession builds the shell binary and drives a live ORB through
// it: auto-assigned request IDs, replies printed, oneway sends, quit.
func TestShellSession(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping subprocess test in -short mode")
	}
	server, ref, impl, err := demo.Serve(orb.Options{}, "shelltest")
	if err != nil {
		t.Fatal(err)
	}
	defer server.Shutdown()

	bin := t.TempDir() + "/heidishell"
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	script := strings.Join([]string{
		"help",
		"call " + ref.String() + " _get_name",
		"call " + ref.String() + " add_nonexistent",
		"send " + ref.String() + " prefetch \"x.mpg\"",
		"call " + ref.String() + " _get_volume",
		"quit",
	}, "\n") + "\n"

	cmd := exec.Command(bin, "-connect", ref.Addr)
	cmd.Stdin = strings.NewReader(script)
	var out bytes.Buffer
	cmd.Stdout = &out
	if err := cmd.Run(); err != nil {
		t.Fatalf("heidishell: %v\n%s", err, out.String())
	}
	text := out.String()
	for _, want := range []string{
		`ok 1 "shelltest"`, // auto-assigned ID 1
		"err 2 3",          // unknown method, ID 2
		"ok 4 0",           // volume; the oneway send took ID 3 with no reply
	} {
		if !strings.Contains(text, want) {
			t.Errorf("shell output missing %q:\n%s", want, text)
		}
	}
	// The oneway prefetch reached the servant.
	if got := impl.Prefetched(); len(got) != 1 || got[0] != "x.mpg" {
		t.Errorf("prefetched = %v", got)
	}
}
