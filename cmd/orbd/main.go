// Command orbd runs a HeidiRMI address space hosting a Media::Session
// demo object — the "Heidi application" of the paper's Figs. 4–5. It
// prints the session's stringified object reference; clients (the examples,
// cmd/heidishell, or telnet when the text protocol is selected) can then
// invoke it.
//
// Usage:
//
//	orbd                          text protocol on an ephemeral port
//	orbd -listen 127.0.0.1:4321   fixed bootstrap port
//	orbd -proto cdr               binary IIOP-style protocol
//	orbd -strategy hash           skeleton dispatch via hash table
//
// With the default text protocol a session can be driven by hand:
//
//	$ telnet 127.0.0.1 4321
//	call 1 <printed-ref> _get_name
//	call 2 <printed-ref> play "news.mpg" 1
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/demo"
	"repro/internal/orb"
	"repro/internal/transport"
	"repro/internal/wire"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "orbd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		listen   = flag.String("listen", "127.0.0.1:0", "bootstrap endpoint")
		proto    = flag.String("proto", "text", "wire protocol: text, cdr or cdr-le")
		strategy = flag.String("strategy", "linear", "dispatch strategy: linear, binary or hash")
		name     = flag.String("name", "session-0", "session object name")

		// Fault-tolerance policy for this address space's outgoing calls
		// (callbacks and object references it invokes). All default off,
		// preserving the paper's exact invocation behavior.
		retryMax     = flag.Int("retry-max", 0, "max attempts per outgoing call (<=1 disables retries)")
		retryBackoff = flag.Duration("retry-backoff", 0, "base backoff before a retry (doubles with jitter)")
		retryBudget  = flag.Int("retry-budget", 0, "ORB-wide retry token budget (0 = unlimited)")
		brkThreshold = flag.Int("breaker-threshold", 0, "consecutive failures tripping an endpoint's circuit breaker (0 disables)")
		brkCooldown  = flag.Duration("breaker-cooldown", 0, "how long a tripped breaker stays open before probing")
		connIdleTTL  = flag.Duration("conn-idle-ttl", 0, "evict cached connections idle longer than this (0 = never)")
		connLifetime = flag.Duration("conn-max-lifetime", 0, "retire cached connections older than this (0 = unlimited)")
	)
	flag.Parse()

	p, err := protocolByName(*proto)
	if err != nil {
		return err
	}
	s, err := strategyByName(*strategy)
	if err != nil {
		return err
	}

	o, ref, _, err := demo.Serve(orb.Options{
		Protocol:         p,
		ListenAddr:       *listen,
		DispatchStrategy: s,
		Retry: orb.RetryPolicy{
			MaxAttempts: *retryMax,
			Backoff:     *retryBackoff,
			Budget:      *retryBudget,
		},
		Breaker: transport.BreakerPolicy{
			Threshold: *brkThreshold,
			Cooldown:  *brkCooldown,
		},
		OnBreakerChange: func(addr string, from, to transport.BreakerState) {
			fmt.Fprintf(os.Stderr, "orbd: circuit breaker for %s: %s -> %s\n", addr, from, to)
		},
		ConnIdleTTL:     *connIdleTTL,
		ConnMaxLifetime: *connLifetime,
	}, *name)
	if err != nil {
		return err
	}
	defer o.Shutdown()

	fmt.Printf("orbd: serving on %s (%s protocol, %s dispatch)\n", o.Addr(), p.Name(), s)
	fmt.Printf("orbd: session reference:\n%s\n", ref)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("orbd: shutting down")
	return nil
}

func protocolByName(name string) (wire.Protocol, error) {
	switch name {
	case "text":
		return wire.Text, nil
	case "cdr":
		return wire.CDR, nil
	case "cdr-le":
		return wire.CDRLittle, nil
	}
	return nil, fmt.Errorf("unknown protocol %q (want text, cdr or cdr-le)", name)
}

func strategyByName(name string) (orb.Strategy, error) {
	switch name {
	case "linear":
		return orb.StrategyLinear, nil
	case "binary":
		return orb.StrategyBinary, nil
	case "hash":
		return orb.StrategyHash, nil
	}
	return 0, fmt.Errorf("unknown strategy %q (want linear, binary or hash)", name)
}
