package idl

import (
	"fmt"
	"strconv"
	"strings"
)

// symbol is an entry in a lexical scope: either a Decl or an enum member
// (IDL injects enum member names into the enclosing scope).
type symbol struct {
	decl Decl
	enum *EnumDecl // non-nil for enum members
	name string    // member name when enum != nil
}

// scope is one level of the lexical scope stack.
type scope struct {
	parent  *scope
	owner   Decl // Module or InterfaceDecl that opened the scope; nil at file scope
	name    string
	entries map[string]*symbol
}

func newScope(parent *scope, owner Decl, name string) *scope {
	return &scope{parent: parent, owner: owner, name: name, entries: make(map[string]*symbol)}
}

// path returns the "::"-separated scope path ("Heidi::A"); empty at file
// scope.
func (s *scope) path() string {
	var parts []string
	for cur := s; cur != nil; cur = cur.parent {
		if cur.name != "" {
			parts = append(parts, cur.name)
		}
	}
	for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
		parts[i], parts[j] = parts[j], parts[i]
	}
	return strings.Join(parts, "::")
}

// Resolver supplies the source text of an #include'd file. It receives the
// name as written between quotes or angle brackets.
type Resolver func(name string) (string, error)

// lexFrame is a suspended lexer: pushed when an #include switches the token
// stream to the included file, popped (restoring the pending token and the
// includer's #pragma prefix) when the included file is exhausted.
type lexFrame struct {
	lx      *Lexer
	dirIdx  int
	prefix  string
	pending Token
}

// Parser is a recursive-descent parser for the IDL grammar described in the
// package documentation. Use Parse or ParseWithIncludes rather than
// constructing a Parser directly.
type Parser struct {
	lx   *Lexer
	tok  Token
	errs ErrorList

	root    *scope
	cur     *scope
	prefix  string // active #pragma prefix
	dirIdx  int    // directives already processed
	spec    *Spec
	pragmas []Directive // pragma ID / version fixups, applied post-parse

	resolver Resolver
	frames   []lexFrame      // suspended includers
	included map[string]bool // include guard (by name as written)
	allDirs  []Directive     // directives accumulated across all files

	// pendingDecls queues trailing declarators of multi-declarator forms
	// ("typedef long A, B;") for the enclosing definition loop.
	pendingDecls []Decl

	// declScopes records the scope owned by each module/interface so that
	// qualified lookup and module reopening share one symbol table.
	declScopes map[Decl]*scope
}

// maxIncludeDepth bounds #include nesting to catch cycles the include
// guard misses (e.g. self-include under different spellings).
const maxIncludeDepth = 32

// Parse parses IDL source text and resolves all names. The file argument is
// used for positions only. #include directives are recorded but not
// followed; use ParseWithIncludes for multi-file compilation. On any
// diagnostic the returned error is an ErrorList; the partially-built Spec
// is still returned for tooling that wants best-effort results.
func Parse(file, src string) (*Spec, error) {
	return ParseWithIncludes(file, src, nil)
}

// ParseWithIncludes parses a translation unit, following #include
// directives through the resolver (a nil resolver records includes without
// following them). Each file is included at most once. Declarations from
// included files are resolvable and carry FromInclude() == true, so code
// generators emit the main unit only — the paper's "external declaration of
// Heidi::S" scenario (Fig. 3).
func ParseWithIncludes(file, src string, resolver Resolver) (*Spec, error) {
	p := &Parser{resolver: resolver, included: map[string]bool{file: true}}
	p.lx = NewLexer(file, src, &p.errs)
	p.root = newScope(nil, nil, "")
	p.cur = p.root
	p.spec = &Spec{File: file}
	p.advance()
	for p.tok.Kind != TokEOF {
		d := p.parseDefinition()
		if d != nil {
			p.spec.Decls = append(p.spec.Decls, d)
		}
		p.spec.Decls = append(p.spec.Decls, p.drainPending()...)
	}
	p.spec.Directives = p.allDirs
	p.spec.Prefix = p.prefix
	p.applyPragmaOverrides()
	p.checkForwardsDefined()
	return p.spec, p.errs.Err()
}

// MustParse is a test/tooling helper that panics on parse errors.
func MustParse(file, src string) *Spec {
	s, err := Parse(file, src)
	if err != nil {
		panic(fmt.Sprintf("idl.MustParse(%s): %v", file, err))
	}
	return s
}

// advance fetches the next token, folding in preprocessor directives and
// transparently crossing #include boundaries: when the current file is
// exhausted, suspended includers resume with the token that was pending
// when the include switched streams.
func (p *Parser) advance() {
	p.tok = p.lx.Next()
	p.processDirectives()
	for p.tok.Kind == TokEOF && len(p.frames) > 0 {
		p.popFrame()
	}
}

// processDirectives handles all directives the current lexer has produced
// so far: #pragma updates parser state; #include (with a resolver) suspends
// the current lexer and switches to the included file.
func (p *Parser) processDirectives() {
	for {
		dirs := p.lx.Directives()
		if p.dirIdx >= len(dirs) {
			return
		}
		d := dirs[p.dirIdx]
		p.dirIdx++
		p.allDirs = append(p.allDirs, d)
		switch d.Name {
		case "pragma":
			if len(d.Args) == 0 {
				continue
			}
			switch d.Args[0] {
			case "prefix":
				if len(d.Args) >= 2 {
					p.prefix = d.Args[1]
				} else {
					p.errs.Add(d.Pos, "#pragma prefix requires a string argument")
				}
			case "ID", "version":
				p.pragmas = append(p.pragmas, d)
			}
		case "include":
			if p.resolver == nil || len(d.Args) == 0 {
				continue
			}
			name := d.Args[0]
			if p.included[name] {
				continue // include guard: each file at most once
			}
			p.included[name] = true
			if len(p.frames) >= maxIncludeDepth {
				p.errs.Add(d.Pos, "#include nesting exceeds %d (cycle?)", maxIncludeDepth)
				continue
			}
			src, err := p.resolver(name)
			if err != nil {
				p.errs.Add(d.Pos, "cannot include %q: %v", name, err)
				continue
			}
			// Suspend this lexer (the already-fetched token resumes
			// when the included file ends) and switch streams. The
			// included file starts with a fresh #pragma prefix, per
			// the CORBA rule that a prefix is lexically scoped to
			// its file.
			p.frames = append(p.frames, lexFrame{
				lx: p.lx, dirIdx: p.dirIdx, prefix: p.prefix, pending: p.tok,
			})
			p.lx = NewLexer(name, src, &p.errs)
			p.dirIdx = 0
			p.prefix = ""
			p.tok = p.lx.Next()
			// Continue with the included file's own directives.
		}
	}
}

// popFrame resumes a suspended includer.
func (p *Parser) popFrame() {
	f := p.frames[len(p.frames)-1]
	p.frames = p.frames[:len(p.frames)-1]
	p.lx, p.dirIdx, p.prefix = f.lx, f.dirIdx, f.prefix
	p.tok = f.pending
	p.processDirectives()
}

func (p *Parser) errorf(pos Pos, format string, args ...any) {
	p.errs.Add(pos, format, args...)
}

// expect consumes a token of the given kind, emitting a diagnostic and
// leaving the token in place otherwise.
func (p *Parser) expect(kind TokenKind) Token {
	t := p.tok
	if t.Kind != kind {
		p.errorf(t.Pos, "expected %s, found %s", kind, t)
		return t
	}
	p.advance()
	return t
}

// accept consumes the token if it has the given kind.
func (p *Parser) accept(kind TokenKind) bool {
	if p.tok.Kind == kind {
		p.advance()
		return true
	}
	return false
}

// sync skips tokens until after the next ';' or before a '}' to recover
// from a parse error.
func (p *Parser) sync() {
	depth := 0
	for p.tok.Kind != TokEOF {
		switch p.tok.Kind {
		case TokSemi:
			if depth == 0 {
				p.advance()
				return
			}
		case TokLBrace:
			depth++
		case TokRBrace:
			if depth == 0 {
				return
			}
			depth--
		}
		p.advance()
	}
}

// declare registers a declaration in the current scope and fills in its
// scoped name and repository ID.
func (p *Parser) declare(d Decl, base *declBase) {
	name := base.Name
	if prev, ok := p.cur.entries[name]; ok {
		// Redefinition is an error except completing a forward
		// interface declaration, handled by the caller.
		if fw, isIface := prev.decl.(*InterfaceDecl); !isIface || !fw.Forward {
			where := "an enum member"
			if prev.decl != nil {
				where = prev.decl.DeclPos().String()
			}
			p.errorf(base.Pos, "redefinition of %q (previous at %s)", name, where)
			return
		}
	}
	p.cur.entries[name] = &symbol{decl: d}
	if sp := p.cur.path(); sp != "" {
		base.Scoped = sp + "::" + name
	} else {
		base.Scoped = name
	}
	base.ID = p.repoID(base.Scoped)
	base.Included = len(p.frames) > 0
}

// repoID computes the OMG repository ID for a scoped name under the active
// prefix: "IDL:Heidi/A:1.0".
func (p *Parser) repoID(scoped string) string {
	path := strings.ReplaceAll(scoped, "::", "/")
	if p.prefix != "" {
		path = p.prefix + "/" + path
	}
	return "IDL:" + path + ":1.0"
}

// lookup resolves a possibly-qualified reference against the scope stack.
func (p *Parser) lookup(ref ScopedRef) *symbol {
	if len(ref.Parts) == 0 {
		return nil
	}
	start := p.cur
	if ref.Absolute {
		start = p.root
	}
	// Find the first component by walking up the scope stack (or only the
	// root for absolute names).
	var sym *symbol
	var symScope *scope
	for s := start; s != nil; s = s.parent {
		if e, ok := s.entries[ref.Parts[0]]; ok {
			sym, symScope = e, s
			break
		}
		if iface, ok := s.owner.(*InterfaceDecl); ok {
			// Names inherited from base interfaces are visible.
			if e := p.lookupInherited(iface, ref.Parts[0]); e != nil {
				sym, symScope = e, s
				break
			}
		}
		if ref.Absolute {
			break
		}
	}
	_ = symScope
	if sym == nil {
		return nil
	}
	// Descend through the remaining components.
	for _, part := range ref.Parts[1:] {
		d := sym.decl
		if d == nil {
			return nil
		}
		var inner *symbol
		switch n := d.(type) {
		case *Module:
			inner = lookupIn(p.scopeFor(n), part)
		case *InterfaceDecl:
			inner = lookupIn(p.scopeFor(n), part)
			if inner == nil {
				inner = p.lookupInherited(n, part)
			}
		default:
			return nil
		}
		if inner == nil {
			return nil
		}
		sym = inner
	}
	return sym
}

// scopeFor returns the scope owned by a module or interface. Scopes are
// recorded when the declaration's body is parsed.
func (p *Parser) scopeFor(d Decl) *scope {
	if p.declScopes == nil {
		return nil
	}
	return p.declScopes[d]
}

func lookupIn(s *scope, name string) *symbol {
	if s == nil {
		return nil
	}
	return s.entries[name]
}

// lookupInherited searches the bases of iface for a member name. Searching
// the base's recorded scope covers operations, attributes, nested types and
// injected enum member names in one place.
func (p *Parser) lookupInherited(iface *InterfaceDecl, name string) *symbol {
	for _, b := range iface.AllBases() {
		if e := lookupIn(p.scopeFor(b), name); e != nil {
			return e
		}
	}
	return nil
}

// parseDefinition parses one top-level or module-level definition.
func (p *Parser) parseDefinition() Decl {
	switch p.tok.Kind {
	case TokModule:
		return p.parseModule()
	case TokInterface:
		return p.parseInterface()
	case TokChannel:
		return p.parseChannel()
	case TokTypedef:
		return p.parseTypedef()
	case TokStruct:
		d := p.parseStruct()
		p.expect(TokSemi)
		return d
	case TokUnion:
		d := p.parseUnion()
		p.expect(TokSemi)
		return d
	case TokEnum:
		d := p.parseEnum()
		p.expect(TokSemi)
		return d
	case TokConst:
		return p.parseConst()
	case TokException:
		return p.parseException()
	case TokSemi:
		p.advance()
		return nil
	default:
		p.errorf(p.tok.Pos, "expected definition, found %s", p.tok)
		before := p.tok.Pos
		p.sync()
		// sync stops in front of a '}' so enclosing bodies can resync to
		// their closing brace; at file scope that would spin, so force
		// progress when nothing was consumed.
		if p.tok.Pos == before && p.tok.Kind != TokEOF {
			p.advance()
		}
		return nil
	}
}

func (p *Parser) parseModule() Decl {
	pos := p.tok.Pos
	p.expect(TokModule)
	name := p.expect(TokIdent)

	var mod *Module
	if prev, ok := p.cur.entries[name.Text]; ok {
		if m, ok := prev.decl.(*Module); ok {
			mod = m // module reopening
			if len(p.frames) == 0 {
				// Reopened in the main unit: the module itself is
				// no longer include-only (its members keep their
				// own per-file marks).
				mod.Included = false
			}
		}
	}
	created := false
	if mod == nil {
		mod = &Module{declBase: declBase{Name: name.Text, Pos: pos}}
		p.declare(mod, &mod.declBase)
		created = true
	}
	p.expect(TokLBrace)
	p.pushScope(mod, name.Text)
	for p.tok.Kind != TokRBrace && p.tok.Kind != TokEOF {
		d := p.parseDefinition()
		if d != nil {
			mod.Decls = append(mod.Decls, d)
		}
		mod.Decls = append(mod.Decls, p.drainPending()...)
	}
	p.popScope()
	p.expect(TokRBrace)
	p.expect(TokSemi)
	if !created {
		return nil // reopened module already appears in spec decls
	}
	return mod
}

// pushScope enters a new (or previously recorded) scope for d.
func (p *Parser) pushScope(d Decl, name string) {
	if p.declScopes == nil {
		p.declScopes = make(map[Decl]*scope)
	}
	if s, ok := p.declScopes[d]; ok {
		// Module reopening: the recorded scope's parent is unchanged.
		p.cur = s
		return
	}
	s := newScope(p.cur, d, name)
	p.declScopes[d] = s
	p.cur = s
}

func (p *Parser) popScope() {
	if p.cur.parent != nil {
		p.cur = p.cur.parent
	}
}

func (p *Parser) parseInterface() Decl {
	pos := p.tok.Pos
	p.expect(TokInterface)
	name := p.expect(TokIdent)

	// Forward declaration?
	if p.tok.Kind == TokSemi {
		p.advance()
		if prev, ok := p.cur.entries[name.Text]; ok {
			if _, isIface := prev.decl.(*InterfaceDecl); isIface {
				return nil // repeat forward declaration is harmless
			}
		}
		fw := &InterfaceDecl{declBase: declBase{Name: name.Text, Pos: pos}, Forward: true}
		p.declare(fw, &fw.declBase)
		return fw
	}

	var iface *InterfaceDecl
	if prev, ok := p.cur.entries[name.Text]; ok {
		if f, isIface := prev.decl.(*InterfaceDecl); isIface && f.Forward {
			// Complete the forward declaration in place so earlier
			// references resolve to the full definition. Whether the
			// interface counts as included follows the completion
			// site, not the forward declaration.
			iface = f
			iface.Forward = false
			iface.Pos = pos
			iface.Included = len(p.frames) > 0
		}
	}
	if iface == nil {
		iface = &InterfaceDecl{declBase: declBase{Name: name.Text, Pos: pos}}
		p.declare(iface, &iface.declBase)
	}

	if p.accept(TokColon) {
		for {
			ref := p.parseScopedRef()
			iface.BaseRefs = append(iface.BaseRefs, ref)
			if sym := p.lookup(ref); sym != nil {
				if b, ok := sym.decl.(*InterfaceDecl); ok {
					// A forward-declared base is permitted: the
					// paper's Fig. 3 inherits from an "external
					// declaration" of Heidi::S whose body lives
					// in another translation unit.
					if b == iface {
						p.errorf(ref.Pos, "interface %s inherits from itself", name.Text)
					} else {
						iface.Bases = append(iface.Bases, b)
					}
				} else {
					p.errorf(ref.Pos, "%s is not an interface", ref)
				}
			} else {
				p.errorf(ref.Pos, "undefined base interface %s", ref)
			}
			if !p.accept(TokComma) {
				break
			}
		}
	}

	p.expect(TokLBrace)
	p.pushScope(iface, name.Text)
	for p.tok.Kind != TokRBrace && p.tok.Kind != TokEOF {
		p.parseExport(iface)
	}
	p.popScope()
	p.expect(TokRBrace)
	p.expect(TokSemi)
	return iface
}

// parseExport parses one interface member.
func (p *Parser) parseExport(iface *InterfaceDecl) {
	switch p.tok.Kind {
	case TokTypedef:
		if d := p.parseTypedef(); d != nil {
			iface.Body = append(iface.Body, d)
			iface.Members = append(iface.Members, d)
		}
		for _, d := range p.drainPending() {
			iface.Body = append(iface.Body, d)
			iface.Members = append(iface.Members, d)
		}
	case TokStruct:
		d := p.parseStruct()
		p.expect(TokSemi)
		if d != nil {
			iface.Body = append(iface.Body, d)
			iface.Members = append(iface.Members, d)
		}
	case TokUnion:
		d := p.parseUnion()
		p.expect(TokSemi)
		if d != nil {
			iface.Body = append(iface.Body, d)
			iface.Members = append(iface.Members, d)
		}
	case TokEnum:
		d := p.parseEnum()
		p.expect(TokSemi)
		if d != nil {
			iface.Body = append(iface.Body, d)
			iface.Members = append(iface.Members, d)
		}
	case TokConst:
		if d := p.parseConst(); d != nil {
			iface.Body = append(iface.Body, d)
			iface.Members = append(iface.Members, d)
		}
	case TokException:
		if d := p.parseException(); d != nil {
			iface.Body = append(iface.Body, d)
			iface.Members = append(iface.Members, d)
		}
	case TokReadonly, TokAttribute:
		p.parseAttribute(iface)
	case TokSemi:
		p.advance()
	default:
		p.parseOperation(iface)
	}
}

// parseChannel parses a channel definition (paper extension):
//
//	channel Name { event void frameReady(in long seq); ... };
//
// Each event is an operation signature introduced by the `event` keyword.
// The grammar deliberately admits ill-shaped events (non-void results,
// out/inout parameters, raises clauses) so the front end can build a full
// AST for idlvet's event-op-illegal analyzer to report against; the
// mappings reject such specs at generation time via the same vet run.
func (p *Parser) parseChannel() Decl {
	pos := p.tok.Pos
	p.expect(TokChannel)
	name := p.expect(TokIdent)
	ch := &ChannelDecl{declBase: declBase{Name: name.Text, Pos: pos}}
	p.declare(ch, &ch.declBase)
	p.expect(TokLBrace)
	p.pushScope(ch, name.Text)
	for p.tok.Kind != TokRBrace && p.tok.Kind != TokEOF {
		switch p.tok.Kind {
		case TokEvent:
			p.advance()
			op := p.parseOpSignature()
			op.Channel = ch
			ch.Events = append(ch.Events, op)
		case TokSemi:
			p.advance()
		default:
			p.errorf(p.tok.Pos, "expected event declaration, found %s", p.tok)
			before := p.tok.Pos
			p.sync()
			if p.tok.Pos == before && p.tok.Kind != TokEOF {
				p.advance()
			}
		}
	}
	p.popScope()
	p.expect(TokRBrace)
	p.expect(TokSemi)
	return ch
}

func (p *Parser) parseAttribute(iface *InterfaceDecl) {
	pos := p.tok.Pos
	readonly := p.accept(TokReadonly)
	p.expect(TokAttribute)
	typ := p.parseParamType()
	for {
		name := p.expect(TokIdent)
		at := &Attribute{
			declBase: declBase{Name: name.Text, Pos: pos},
			Readonly: readonly,
			Type:     typ,
			Owner:    iface,
		}
		p.declare(at, &at.declBase)
		iface.Attrs = append(iface.Attrs, at)
		iface.Members = append(iface.Members, at)
		if !p.accept(TokComma) {
			break
		}
	}
	p.expect(TokSemi)
}

func (p *Parser) parseOperation(iface *InterfaceDecl) {
	pos := p.tok.Pos
	op := p.parseOpSignature()
	op.Owner = iface
	if op.Oneway && op.Result.Kind != KindVoid {
		p.errorf(pos, "oneway operation %s must return void", op.Name)
	}
	iface.Ops = append(iface.Ops, op)
	iface.Members = append(iface.Members, op)
}

// parseOpSignature parses an operation signature — result type, name,
// parameter list, raises and context clauses, terminating semicolon — and
// declares it in the current scope. It is shared by interface operations and
// channel events; shape constraints beyond the grammar (oneway-must-be-void
// for operations, oneway-shaped-only for events) are the callers' and
// idlvet's business, not enforced here.
func (p *Parser) parseOpSignature() *Operation {
	pos := p.tok.Pos
	oneway := p.accept(TokOneway)
	var result *Type
	if p.tok.Kind == TokVoid {
		p.advance()
		result = TypeVoid
	} else {
		result = p.parseParamType()
	}
	name := p.expect(TokIdent)
	op := &Operation{
		declBase: declBase{Name: name.Text, Pos: pos},
		Oneway:   oneway,
		Result:   result,
	}
	p.declare(op, &op.declBase)

	p.expect(TokLParen)
	if p.tok.Kind != TokRParen {
		seenDefault := false
		for {
			prm := p.parseParam()
			if prm != nil {
				if prm.Default != nil {
					seenDefault = true
				} else if seenDefault {
					p.errorf(prm.Pos, "parameter %q without default follows a defaulted parameter", prm.Name)
				}
				op.Params = append(op.Params, prm)
			}
			if !p.accept(TokComma) {
				break
			}
		}
	}
	p.expect(TokRParen)

	if p.accept(TokRaises) {
		p.expect(TokLParen)
		for {
			ref := p.parseScopedRef()
			op.RaiseRefs = append(op.RaiseRefs, ref)
			if sym := p.lookup(ref); sym != nil {
				if ex, ok := sym.decl.(*ExceptDecl); ok {
					op.Raises = append(op.Raises, ex)
				} else {
					p.errorf(ref.Pos, "%s is not an exception", ref)
				}
			} else {
				p.errorf(ref.Pos, "undefined exception %s", ref)
			}
			if !p.accept(TokComma) {
				break
			}
		}
		p.expect(TokRParen)
	}
	if p.accept(TokContext) {
		p.expect(TokLParen)
		for {
			s := p.expect(TokStringLit)
			op.Context = append(op.Context, s.Text)
			if !p.accept(TokComma) {
				break
			}
		}
		p.expect(TokRParen)
	}
	p.expect(TokSemi)
	return op
}

func (p *Parser) parseParam() *Param {
	pos := p.tok.Pos
	var mode ParamMode
	switch p.tok.Kind {
	case TokIn:
		mode = ModeIn
	case TokOut:
		mode = ModeOut
	case TokInout:
		mode = ModeInOut
	case TokIncopy:
		mode = ModeInCopy
	default:
		p.errorf(pos, "expected parameter mode (in, out, inout, incopy), found %s", p.tok)
		p.sync()
		return nil
	}
	p.advance()
	typ := p.parseParamType()
	name := p.expect(TokIdent)
	prm := &Param{Name: name.Text, Pos: pos, Mode: mode, Type: typ}
	if p.accept(TokEquals) {
		// Paper extension: default parameter value.
		if mode != ModeIn && mode != ModeInCopy {
			p.errorf(pos, "default value on %s parameter %q (defaults require in or incopy)", mode, name.Text)
		}
		val := p.parseConstExpr()
		prm.Default = p.coerceConst(val, typ, pos)
	}
	return prm
}

// parseTypedef parses a typedef declaration; the first declarator is
// returned and any further declarators ("typedef long A, B, C[4];") are
// queued on p.pendingDecls for the enclosing definition loop to collect.
func (p *Parser) parseTypedef() Decl {
	pos := p.tok.Pos
	p.expect(TokTypedef)
	base := p.parseTypeSpec()
	var first Decl
	for {
		name := p.expect(TokIdent)
		typ := base
		// Array declarator.
		var dims []uint64
		for p.tok.Kind == TokLBracket {
			p.advance()
			v := p.parseConstExpr()
			n := p.constToBound(v, p.tok.Pos)
			dims = append(dims, n)
			p.expect(TokRBracket)
		}
		if len(dims) > 0 {
			typ = &Type{Kind: KindArray, Elem: base, Dims: dims}
		}
		td := &TypedefDecl{declBase: declBase{Name: name.Text, Pos: pos}, Aliased: typ}
		p.declare(td, &td.declBase)
		if first == nil {
			first = td
		} else {
			p.pendingDecls = append(p.pendingDecls, td)
		}
		if !p.accept(TokComma) {
			break
		}
	}
	p.expect(TokSemi)
	return first
}

// drainPending returns and clears the declarations queued by multi-
// declarator forms.
func (p *Parser) drainPending() []Decl {
	out := p.pendingDecls
	p.pendingDecls = nil
	return out
}

func (p *Parser) parseStruct() Decl {
	pos := p.tok.Pos
	p.expect(TokStruct)
	name := p.expect(TokIdent)
	st := &StructDecl{declBase: declBase{Name: name.Text, Pos: pos}}
	p.declare(st, &st.declBase)
	p.expect(TokLBrace)
	for p.tok.Kind != TokRBrace && p.tok.Kind != TokEOF {
		typ := p.parseTypeSpec()
		for {
			mname := p.expect(TokIdent)
			mt := typ
			var dims []uint64
			for p.tok.Kind == TokLBracket {
				p.advance()
				v := p.parseConstExpr()
				dims = append(dims, p.constToBound(v, p.tok.Pos))
				p.expect(TokRBracket)
			}
			if len(dims) > 0 {
				mt = &Type{Kind: KindArray, Elem: typ, Dims: dims}
			}
			st.Members = append(st.Members, &Member{Name: mname.Text, Pos: mname.Pos, Type: mt})
			if !p.accept(TokComma) {
				break
			}
		}
		p.expect(TokSemi)
	}
	p.expect(TokRBrace)
	return st
}

func (p *Parser) parseException() Decl {
	pos := p.tok.Pos
	p.expect(TokException)
	name := p.expect(TokIdent)
	ex := &ExceptDecl{declBase: declBase{Name: name.Text, Pos: pos}}
	p.declare(ex, &ex.declBase)
	p.expect(TokLBrace)
	for p.tok.Kind != TokRBrace && p.tok.Kind != TokEOF {
		typ := p.parseTypeSpec()
		for {
			mname := p.expect(TokIdent)
			ex.Members = append(ex.Members, &Member{Name: mname.Text, Pos: mname.Pos, Type: typ})
			if !p.accept(TokComma) {
				break
			}
		}
		p.expect(TokSemi)
	}
	p.expect(TokRBrace)
	p.expect(TokSemi)
	return ex
}

func (p *Parser) parseUnion() Decl {
	pos := p.tok.Pos
	p.expect(TokUnion)
	name := p.expect(TokIdent)
	un := &UnionDecl{declBase: declBase{Name: name.Text, Pos: pos}}
	p.declare(un, &un.declBase)
	p.expect(TokSwitch)
	p.expect(TokLParen)
	un.Disc = p.parseTypeSpec()
	switch d := un.Disc.Unalias(); {
	case d.Kind.IsInteger(), d.Kind == KindBoolean, d.Kind == KindChar, d.Kind == KindEnum:
		// valid discriminator
	default:
		p.errorf(pos, "invalid union discriminator type %s", un.Disc.Name())
	}
	p.expect(TokRParen)
	p.expect(TokLBrace)
	for p.tok.Kind != TokRBrace && p.tok.Kind != TokEOF {
		c := &UnionCase{}
		for {
			if p.accept(TokDefault) {
				c.IsDefault = true
				p.expect(TokColon)
			} else if p.accept(TokCase) {
				v := p.parseConstExpr()
				c.Labels = append(c.Labels, p.coerceConst(v, un.Disc, p.tok.Pos))
				p.expect(TokColon)
			} else {
				break
			}
		}
		if !c.IsDefault && len(c.Labels) == 0 {
			p.errorf(p.tok.Pos, "expected 'case' or 'default' in union body, found %s", p.tok)
			p.sync()
			continue
		}
		c.Type = p.parseTypeSpec()
		mname := p.expect(TokIdent)
		c.Name, c.Pos = mname.Text, mname.Pos
		p.expect(TokSemi)
		un.Cases = append(un.Cases, c)
	}
	p.expect(TokRBrace)
	return un
}

func (p *Parser) parseEnum() Decl {
	pos := p.tok.Pos
	p.expect(TokEnum)
	name := p.expect(TokIdent)
	en := &EnumDecl{declBase: declBase{Name: name.Text, Pos: pos}}
	p.declare(en, &en.declBase)
	p.expect(TokLBrace)
	for {
		m := p.expect(TokIdent)
		if m.Kind == TokIdent {
			en.Members = append(en.Members, m.Text)
			// Enum members are injected into the enclosing scope.
			if _, exists := p.cur.entries[m.Text]; exists {
				p.errorf(m.Pos, "redefinition of %q by enum member", m.Text)
			} else {
				p.cur.entries[m.Text] = &symbol{enum: en, name: m.Text}
			}
		}
		if !p.accept(TokComma) {
			break
		}
	}
	p.expect(TokRBrace)
	return en
}

func (p *Parser) parseConst() Decl {
	pos := p.tok.Pos
	p.expect(TokConst)
	typ := p.parseTypeSpec()
	name := p.expect(TokIdent)
	p.expect(TokEquals)
	val := p.parseConstExpr()
	cd := &ConstDecl{
		declBase: declBase{Name: name.Text, Pos: pos},
		Type:     typ,
		Value:    p.coerceConst(val, typ, pos),
	}
	p.declare(cd, &cd.declBase)
	p.expect(TokSemi)
	return cd
}

// parseScopedRef parses a scoped name ("A", "::A::B", "A::B").
func (p *Parser) parseScopedRef() ScopedRef {
	ref := ScopedRef{Pos: p.tok.Pos}
	if p.accept(TokScope) {
		ref.Absolute = true
	}
	for {
		t := p.expect(TokIdent)
		if t.Kind != TokIdent {
			break
		}
		ref.Parts = append(ref.Parts, t.Text)
		if !p.accept(TokScope) {
			break
		}
	}
	return ref
}

// parseTypeSpec parses a full type specification including constructed
// anonymous sequence types.
func (p *Parser) parseTypeSpec() *Type {
	pos := p.tok.Pos
	switch p.tok.Kind {
	case TokBoolean:
		p.advance()
		return TypeBoolean
	case TokChar:
		p.advance()
		return TypeChar
	case TokWChar:
		p.advance()
		return &Type{Kind: KindWChar}
	case TokOctet:
		p.advance()
		return TypeOctet
	case TokFloat:
		p.advance()
		return TypeFloat
	case TokDouble:
		p.advance()
		return TypeDouble
	case TokAny:
		p.advance()
		return TypeAny
	case TokObject:
		p.advance()
		return TypeObject
	case TokShort:
		p.advance()
		return TypeShort
	case TokLong:
		p.advance()
		if p.tok.Kind == TokLong {
			p.advance()
			return TypeLongLong
		}
		if p.tok.Kind == TokDouble {
			p.advance()
			return &Type{Kind: KindLongDouble}
		}
		return TypeLong
	case TokUnsigned:
		p.advance()
		switch p.tok.Kind {
		case TokShort:
			p.advance()
			return TypeUShort
		case TokLong:
			p.advance()
			if p.tok.Kind == TokLong {
				p.advance()
				return TypeULongLong
			}
			return TypeULong
		default:
			p.errorf(p.tok.Pos, "expected 'short' or 'long' after 'unsigned', found %s", p.tok)
			return TypeULong
		}
	case TokString, TokWString:
		kind := KindString
		if p.tok.Kind == TokWString {
			kind = KindWString
		}
		p.advance()
		var bound uint64
		if p.accept(TokLAngle) {
			v := p.parseConstExpr()
			bound = p.constToBound(v, pos)
			p.expect(TokRAngle)
		}
		if bound == 0 && kind == KindString {
			return TypeString
		}
		return &Type{Kind: kind, Bound: bound}
	case TokSequence:
		p.advance()
		p.expect(TokLAngle)
		elem := p.parseTypeSpec()
		var bound uint64
		if p.accept(TokComma) {
			v := p.parseConstExpr()
			bound = p.constToBound(v, pos)
		}
		p.expect(TokRAngle)
		return &Type{Kind: KindSequence, Elem: elem, Bound: bound}
	case TokVoid:
		p.errorf(pos, "'void' is only valid as an operation result type")
		p.advance()
		return TypeVoid
	case TokIdent, TokScope:
		ref := p.parseScopedRef()
		sym := p.lookup(ref)
		if sym == nil {
			p.errorf(ref.Pos, "undefined type %s", ref)
			return TypeAny
		}
		switch d := sym.decl.(type) {
		case *InterfaceDecl:
			return &Type{Kind: KindInterface, Decl: d}
		case *StructDecl:
			return &Type{Kind: KindStruct, Decl: d}
		case *UnionDecl:
			return &Type{Kind: KindUnion, Decl: d}
		case *EnumDecl:
			return &Type{Kind: KindEnum, Decl: d}
		case *TypedefDecl:
			return d.Type()
		default:
			p.errorf(ref.Pos, "%s does not name a type", ref)
			return TypeAny
		}
	default:
		p.errorf(pos, "expected type specification, found %s", p.tok)
		p.advance()
		return TypeAny
	}
}

// parseParamType is parseTypeSpec for contexts where anonymous constructed
// types other than sequence/string are not permitted (parameters,
// attributes, results). The grammar subset is identical here.
func (p *Parser) parseParamType() *Type { return p.parseTypeSpec() }

func (p *Parser) constToBound(v *ConstValue, pos Pos) uint64 {
	if v == nil {
		return 0
	}
	if v.Kind != ConstInt || v.Int < 0 {
		p.errorf(pos, "bound must be a non-negative integer constant, got %s", v)
		return 0
	}
	return uint64(v.Int)
}

// coerceConst checks that a constant value is compatible with the target
// type and normalises it (e.g. int literal for a float type).
func (p *Parser) coerceConst(v *ConstValue, typ *Type, pos Pos) *ConstValue {
	if v == nil || typ == nil {
		return v
	}
	u := typ.Unalias()
	switch {
	case u.Kind.IsInteger():
		if v.Kind != ConstInt {
			p.errorf(pos, "constant %s is not an integer", v)
		}
	case u.Kind == KindFloat || u.Kind == KindDouble || u.Kind == KindLongDouble:
		if v.Kind == ConstInt {
			return &ConstValue{Kind: ConstFloat, Flt: float64(v.Int), Ref: v.Ref}
		}
		if v.Kind != ConstFloat {
			p.errorf(pos, "constant %s is not a floating-point value", v)
		}
	case u.Kind == KindBoolean:
		if v.Kind != ConstBool {
			p.errorf(pos, "constant %s is not a boolean", v)
		}
	case u.Kind == KindChar || u.Kind == KindWChar:
		if v.Kind != ConstChar {
			p.errorf(pos, "constant %s is not a character", v)
		}
	case u.Kind == KindString || u.Kind == KindWString:
		if v.Kind != ConstString {
			p.errorf(pos, "constant %s is not a string", v)
		}
	case u.Kind == KindEnum:
		if v.Kind != ConstEnum {
			p.errorf(pos, "constant %s is not a member of enum %s", v, u.Name())
		} else if v.Enum != u.Decl {
			p.errorf(pos, "enum constant %s belongs to %s, not %s", v.Name, v.Enum.DeclName(), u.Name())
		}
	}
	return v
}

// --- constant expressions --------------------------------------------------

// parseConstExpr parses and evaluates a constant expression with the IDL
// operator set: | ^ & << >> + - * / % and unary + - ~.
func (p *Parser) parseConstExpr() *ConstValue { return p.parseOrExpr() }

func (p *Parser) parseOrExpr() *ConstValue {
	v := p.parseXorExpr()
	for p.tok.Kind == TokPipe {
		p.advance()
		r := p.parseXorExpr()
		v = p.intBinop(v, r, "|", func(a, b int64) int64 { return a | b })
	}
	return v
}

func (p *Parser) parseXorExpr() *ConstValue {
	v := p.parseAndExpr()
	for p.tok.Kind == TokCaret {
		p.advance()
		r := p.parseAndExpr()
		v = p.intBinop(v, r, "^", func(a, b int64) int64 { return a ^ b })
	}
	return v
}

func (p *Parser) parseAndExpr() *ConstValue {
	v := p.parseShiftExpr()
	for p.tok.Kind == TokAmp {
		p.advance()
		r := p.parseShiftExpr()
		v = p.intBinop(v, r, "&", func(a, b int64) int64 { return a & b })
	}
	return v
}

func (p *Parser) parseShiftExpr() *ConstValue {
	v := p.parseAddExpr()
	for p.tok.Kind == TokShiftLeft || p.tok.Kind == TokShiftRight {
		op := p.tok.Kind
		p.advance()
		r := p.parseAddExpr()
		if op == TokShiftLeft {
			v = p.intBinop(v, r, "<<", func(a, b int64) int64 { return a << uint(b&63) })
		} else {
			v = p.intBinop(v, r, ">>", func(a, b int64) int64 { return a >> uint(b&63) })
		}
	}
	return v
}

func (p *Parser) parseAddExpr() *ConstValue {
	v := p.parseMulExpr()
	for p.tok.Kind == TokPlus || p.tok.Kind == TokMinus {
		op := p.tok.Kind
		p.advance()
		r := p.parseMulExpr()
		v = p.arithBinop(v, r, op)
	}
	return v
}

func (p *Parser) parseMulExpr() *ConstValue {
	v := p.parseUnaryExpr()
	for p.tok.Kind == TokStar || p.tok.Kind == TokSlash || p.tok.Kind == TokPercent {
		op := p.tok.Kind
		p.advance()
		r := p.parseUnaryExpr()
		v = p.arithBinop(v, r, op)
	}
	return v
}

func (p *Parser) parseUnaryExpr() *ConstValue {
	pos := p.tok.Pos
	switch p.tok.Kind {
	case TokMinus:
		p.advance()
		v := p.parseUnaryExpr()
		switch v.Kind {
		case ConstInt:
			return &ConstValue{Kind: ConstInt, Int: -v.Int}
		case ConstFloat:
			return &ConstValue{Kind: ConstFloat, Flt: -v.Flt}
		}
		p.errorf(pos, "unary '-' requires a numeric operand")
		return v
	case TokPlus:
		p.advance()
		return p.parseUnaryExpr()
	case TokTilde:
		p.advance()
		v := p.parseUnaryExpr()
		if v.Kind == ConstInt {
			return &ConstValue{Kind: ConstInt, Int: ^v.Int}
		}
		p.errorf(pos, "unary '~' requires an integer operand")
		return v
	}
	return p.parsePrimaryExpr()
}

func (p *Parser) parsePrimaryExpr() *ConstValue {
	pos := p.tok.Pos
	switch p.tok.Kind {
	case TokLParen:
		p.advance()
		v := p.parseConstExpr()
		p.expect(TokRParen)
		return v
	case TokIntLit:
		t := p.tok
		p.advance()
		n, err := strconv.ParseInt(t.Text, 0, 64)
		if err != nil {
			// Try unsigned range.
			if u, uerr := strconv.ParseUint(t.Text, 0, 64); uerr == nil {
				return &ConstValue{Kind: ConstInt, Int: int64(u)}
			}
			p.errorf(pos, "invalid integer literal %q: %v", t.Text, err)
			return &ConstValue{Kind: ConstInt}
		}
		return &ConstValue{Kind: ConstInt, Int: n}
	case TokFloatLit:
		t := p.tok
		p.advance()
		text := strings.TrimSuffix(strings.TrimSuffix(t.Text, "d"), "D")
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			p.errorf(pos, "invalid floating-point literal %q: %v", t.Text, err)
		}
		return &ConstValue{Kind: ConstFloat, Flt: f}
	case TokCharLit:
		t := p.tok
		p.advance()
		return &ConstValue{Kind: ConstChar, Str: t.Text}
	case TokStringLit:
		var b strings.Builder
		for p.tok.Kind == TokStringLit { // adjacent strings concatenate
			b.WriteString(p.tok.Text)
			p.advance()
		}
		return &ConstValue{Kind: ConstString, Str: b.String()}
	case TokTrue:
		p.advance()
		return &ConstValue{Kind: ConstBool, Bool: true}
	case TokFalse:
		p.advance()
		return &ConstValue{Kind: ConstBool, Bool: false}
	case TokIdent, TokScope:
		ref := p.parseScopedRef()
		sym := p.lookup(ref)
		if sym == nil {
			p.errorf(ref.Pos, "undefined constant %s", ref)
			return &ConstValue{Kind: ConstInt}
		}
		if sym.enum != nil {
			return &ConstValue{Kind: ConstEnum, Enum: sym.enum, Name: sym.name, Ref: ref.String()}
		}
		if cd, ok := sym.decl.(*ConstDecl); ok {
			v := *cd.Value
			v.Ref = ref.String()
			return &v
		}
		p.errorf(ref.Pos, "%s is not a constant", ref)
		return &ConstValue{Kind: ConstInt}
	default:
		p.errorf(pos, "expected constant expression, found %s", p.tok)
		p.advance()
		return &ConstValue{Kind: ConstInt}
	}
}

func (p *Parser) intBinop(a, b *ConstValue, op string, fn func(x, y int64) int64) *ConstValue {
	if a.Kind != ConstInt || b.Kind != ConstInt {
		p.errorf(p.tok.Pos, "operator %q requires integer operands", op)
		return &ConstValue{Kind: ConstInt}
	}
	return &ConstValue{Kind: ConstInt, Int: fn(a.Int, b.Int)}
}

func (p *Parser) arithBinop(a, b *ConstValue, op TokenKind) *ConstValue {
	if a.Kind == ConstInt && b.Kind == ConstInt {
		switch op {
		case TokPlus:
			return &ConstValue{Kind: ConstInt, Int: a.Int + b.Int}
		case TokMinus:
			return &ConstValue{Kind: ConstInt, Int: a.Int - b.Int}
		case TokStar:
			return &ConstValue{Kind: ConstInt, Int: a.Int * b.Int}
		case TokSlash:
			if b.Int == 0 {
				p.errorf(p.tok.Pos, "division by zero in constant expression")
				return &ConstValue{Kind: ConstInt}
			}
			return &ConstValue{Kind: ConstInt, Int: a.Int / b.Int}
		case TokPercent:
			if b.Int == 0 {
				p.errorf(p.tok.Pos, "modulo by zero in constant expression")
				return &ConstValue{Kind: ConstInt}
			}
			return &ConstValue{Kind: ConstInt, Int: a.Int % b.Int}
		}
	}
	af, aok := numVal(a)
	bf, bok := numVal(b)
	if !aok || !bok {
		p.errorf(p.tok.Pos, "arithmetic requires numeric operands")
		return &ConstValue{Kind: ConstInt}
	}
	var r float64
	switch op {
	case TokPlus:
		r = af + bf
	case TokMinus:
		r = af - bf
	case TokStar:
		r = af * bf
	case TokSlash:
		if bf == 0 {
			p.errorf(p.tok.Pos, "division by zero in constant expression")
			return &ConstValue{Kind: ConstFloat}
		}
		r = af / bf
	case TokPercent:
		p.errorf(p.tok.Pos, "operator %% requires integer operands")
		return &ConstValue{Kind: ConstFloat}
	}
	return &ConstValue{Kind: ConstFloat, Flt: r}
}

func numVal(v *ConstValue) (float64, bool) {
	switch v.Kind {
	case ConstInt:
		return float64(v.Int), true
	case ConstFloat:
		return v.Flt, true
	}
	return 0, false
}

// applyPragmaOverrides rewrites repository IDs for "#pragma ID" and
// "#pragma version" directives.
func (p *Parser) applyPragmaOverrides() {
	if len(p.pragmas) == 0 {
		return
	}
	byName := map[string]*declBase{}
	p.spec.Walk(func(d Decl) bool {
		if b := baseOf(d); b != nil {
			byName[b.Scoped] = b
			// Also index by simple name when unambiguous.
			if _, dup := byName[b.Name]; !dup {
				byName[b.Name] = b
			}
		}
		return true
	})
	for _, d := range p.pragmas {
		if len(d.Args) < 3 {
			p.errorf(d.Pos, "#pragma %s requires a name and a value", d.Args[0])
			continue
		}
		target := strings.TrimPrefix(d.Args[1], "::")
		b, ok := byName[target]
		if !ok {
			p.errorf(d.Pos, "#pragma %s: unknown name %q", d.Args[0], d.Args[1])
			continue
		}
		switch d.Args[0] {
		case "ID":
			b.ID = d.Args[2]
		case "version":
			// Replace the trailing ":<ver>".
			if i := strings.LastIndexByte(b.ID, ':'); i > 3 { // after "IDL"
				b.ID = b.ID[:i+1] + d.Args[2]
			}
		}
	}
}

// baseOf extracts the embedded declBase from any Decl.
func baseOf(d Decl) *declBase {
	switch n := d.(type) {
	case *Module:
		return &n.declBase
	case *InterfaceDecl:
		return &n.declBase
	case *ChannelDecl:
		return &n.declBase
	case *Operation:
		return &n.declBase
	case *Attribute:
		return &n.declBase
	case *StructDecl:
		return &n.declBase
	case *UnionDecl:
		return &n.declBase
	case *EnumDecl:
		return &n.declBase
	case *TypedefDecl:
		return &n.declBase
	case *ConstDecl:
		return &n.declBase
	case *ExceptDecl:
		return &n.declBase
	}
	return nil
}

// checkForwardsDefined reports forward-declared interfaces that were never
// completed. (OMG IDL permits this in a multi-file compilation; a single
// translation unit that uses such an interface as a base has already been
// diagnosed, so this is a warning-level error only for dangling forwards
// that were actually referenced as types — which we cannot distinguish here,
// so we leave pure dangling forwards alone.)
func (p *Parser) checkForwardsDefined() {}
