package check

import "repro/internal/idl"

// Default-parameter legality (the paper's §3 IDL extension): defaults must
// be trailing, carried by in/incopy parameters only, and the constant value
// must be type-compatible with the declared parameter type. The parser
// reports these as syntax errors too; the analyzers re-derive them from the
// best-effort AST so `idlvet` gives each a stable check ID even when the
// spec arrived pre-parsed.

func init() {
	Register(&Analyzer{
		Name:     "default-order",
		Doc:      "parameters without defaults may not follow parameters with defaults",
		Kind:     KindSpec,
		Severity: SevError,
		Run:      runDefaultOrder,
	})
	Register(&Analyzer{
		Name:     "default-mode",
		Doc:      "default values are only legal on in and incopy parameters",
		Kind:     KindSpec,
		Severity: SevError,
		Run:      runDefaultMode,
	})
	Register(&Analyzer{
		Name:     "default-type",
		Doc:      "a default value must be type-compatible with the declared parameter type",
		Kind:     KindSpec,
		Severity: SevError,
		Run:      runDefaultType,
	})
}

func runDefaultOrder(pass *Pass) {
	forEachMainOp(pass.Spec, func(op *idl.Operation) {
		seenDefault := false
		for _, p := range op.Params {
			switch {
			case p.Default != nil:
				seenDefault = true
			case seenDefault:
				pass.Reportf(p.Pos, "parameter %q without a default follows a defaulted parameter (defaults must be trailing)",
					p.Name)
			}
		}
	})
}

func runDefaultMode(pass *Pass) {
	forEachMainOp(pass.Spec, func(op *idl.Operation) {
		for _, p := range op.Params {
			if p.Default == nil {
				continue
			}
			if p.Mode == idl.ModeOut || p.Mode == idl.ModeInOut {
				pass.Reportf(p.Pos, "%s parameter %q may not have a default value (defaults require in or incopy)",
					p.Mode, p.Name)
			}
		}
	})
}

func runDefaultType(pass *Pass) {
	forEachMainOp(pass.Spec, func(op *idl.Operation) {
		for _, p := range op.Params {
			if p.Default == nil || p.Type == nil {
				continue
			}
			u := p.Type.Unalias()
			if u == nil {
				continue
			}
			if !defaultCompatible(u, p.Default) {
				pass.Reportf(p.Pos, "default value %s is not compatible with parameter type %s",
					p.Default, p.Type.Name())
			}
		}
	})
}

// defaultCompatible reports whether constant value v can initialize a
// parameter of (unaliased) type u.
func defaultCompatible(u *idl.Type, v *idl.ConstValue) bool {
	switch {
	case u.Kind.IsInteger():
		return v.Kind == idl.ConstInt
	case u.Kind == idl.KindFloat || u.Kind == idl.KindDouble || u.Kind == idl.KindLongDouble:
		return v.Kind == idl.ConstFloat || v.Kind == idl.ConstInt
	case u.Kind == idl.KindBoolean:
		return v.Kind == idl.ConstBool
	case u.Kind == idl.KindChar || u.Kind == idl.KindWChar:
		return v.Kind == idl.ConstChar
	case u.Kind == idl.KindString || u.Kind == idl.KindWString:
		return v.Kind == idl.ConstString
	case u.Kind == idl.KindEnum:
		if v.Kind != idl.ConstEnum || v.Enum == nil {
			return false
		}
		return idl.Decl(v.Enum) == u.Decl || v.Enum.ScopedName() == declScoped(u.Decl)
	default:
		// Structs, unions, sequences, arrays, interfaces, any: no constant
		// syntax can express a default for these.
		return false
	}
}

func declScoped(d idl.Decl) string {
	if d == nil {
		return ""
	}
	return d.ScopedName()
}
