// Package transport provides the connection layer beneath HeidiRMI's
// ObjectCommunicator: framed, protocol-agnostic message channels over TCP
// (the paper's bootstrap-port model, Fig. 5) and over in-process pipes for
// deterministic tests, plus the connection cache of §3.1 ("Connections are
// cached and reused in HeidiRMI, and only if there is no available
// connection is a new connection opened").
package transport

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/wire"
)

// Conn is one framed message channel. Implementations must serialize
// concurrent Send calls internally (streamConn holds a send lock around each
// whole frame) — the server interleaves replies from concurrent dispatches
// on one connection, and MuxConn relies on whole-frame writes. Recv is
// single-consumer: only one goroutine may read (the pool hands each
// checked-out Conn to one caller at a time; the mux and server sides each
// read from a single dedicated goroutine).
type Conn interface {
	// Send writes one message.
	Send(m *wire.Message) error
	// Recv reads the next message, returning wire.ErrClosed after a
	// clean shutdown.
	Recv() (*wire.Message, error)
	// SetDeadline bounds subsequent Send and Recv calls; the zero time
	// removes the bound. Expired deadlines surface as I/O errors.
	SetDeadline(t time.Time) error
	// Close tears the channel down.
	Close() error
	// RemoteAddr describes the peer for diagnostics.
	RemoteAddr() string
}

// Listener accepts inbound connections on a bootstrap endpoint.
type Listener interface {
	Accept() (Conn, error)
	Close() error
	// Addr returns the bound endpoint ("127.0.0.1:4321" or an inproc
	// name), suitable for embedding in object references.
	Addr() string
}

// Transport creates listeners and outbound connections for one scheme.
type Transport interface {
	// Name is the scheme used in object references ("tcp", "inproc").
	Name() string
	Listen(addr string) (Listener, error)
	Dial(addr string) (Conn, error)
}

// ErrListenerClosed is returned by Accept after Close.
var ErrListenerClosed = errors.New("transport: listener closed")

// BatchSender is implemented by Conns that can emit several frames as one
// gathered write. SendBatch is atomic with respect to concurrent Send calls
// (no frame interleaving) and is the primitive the Coalescer builds on: on
// TCP it collapses N frames into a single writev syscall.
type BatchSender interface {
	SendBatch(ms []*wire.Message) error
}

// streamConn frames messages over any io stream with a wire.Protocol.
type streamConn struct {
	nc     net.Conn
	r      *bufio.Reader
	proto  wire.Protocol
	sendMu sync.Mutex

	// Gathered-write scratch, guarded by sendMu: per-frame encode buffers
	// (capacity reused across batches) and the iovec slice handed to writev.
	frames [][]byte
	segs   net.Buffers
}

// readerPool recycles per-connection read buffers: a connection-churn
// workload (cache ablation, pool eviction, mux redials) otherwise pays a
// fresh 4 KiB bufio allocation per dial.
var readerPool = sync.Pool{
	New: func() any { return bufio.NewReaderSize(nil, 4096) },
}

// NewStreamConn wraps a net.Conn (TCP socket, net.Pipe end, ...) into a
// Conn framing messages with proto.
func NewStreamConn(nc net.Conn, proto wire.Protocol) Conn {
	r := readerPool.Get().(*bufio.Reader)
	r.Reset(nc)
	return &streamConn{nc: nc, r: r, proto: proto}
}

func (c *streamConn) Send(m *wire.Message) error {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	return c.proto.WriteMessage(c.nc, m)
}

// maxRetainedFrame bounds the capacity of per-conn batch encode buffers kept
// across batches (same bound as the wire frame pool).
const maxRetainedFrame = 64 << 10

// SendBatch implements BatchSender: each message is encoded into its own
// retained buffer and the set is written with net.Buffers, which on TCP is a
// single writev. On non-TCP streams (net.Pipe) net.Buffers degrades to
// sequential writes, preserving semantics if not the syscall win.
func (c *streamConn) SendBatch(ms []*wire.Message) error {
	switch len(ms) {
	case 0:
		return nil
	case 1:
		return c.Send(ms[0])
	}
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	segs := c.segs[:0]
	for i, m := range ms {
		if i == len(c.frames) {
			c.frames = append(c.frames, nil)
		}
		b, err := c.proto.AppendMessage(c.frames[i][:0], m)
		if err != nil {
			return err
		}
		c.frames[i] = b
		segs = append(segs, b)
	}
	// WriteTo consumes its receiver as it writes; give it a copy of the
	// header so the backing array can be reused for the next batch.
	wv := segs
	_, err := wv.WriteTo(c.nc)
	// Drop any oversized encode buffers so one huge payload is not pinned.
	c.segs = segs[:0]
	for i := range c.frames {
		if cap(c.frames[i]) > maxRetainedFrame {
			c.frames[i] = nil
		}
	}
	return err
}

func (c *streamConn) Recv() (*wire.Message, error) {
	if c.r == nil {
		return nil, wire.ErrClosed
	}
	m, err := c.proto.ReadMessage(c.r)
	if err != nil {
		if errors.Is(err, wire.ErrClosed) {
			// Clean shutdown: the single Recv consumer owns the buffer at
			// this point, so it can go back to the pool for the next dial.
			// Close never recycles — it may race a blocked Recv.
			c.recycleReader()
		}
		return nil, err
	}
	if m.Type == wire.MsgClose {
		wire.FreeMessage(m)
		c.recycleReader()
		return nil, wire.ErrClosed
	}
	return m, nil
}

// recycleReader returns the read buffer to the pool; later Recv calls
// report a closed connection.
func (c *streamConn) recycleReader() {
	r := c.r
	c.r = nil
	r.Reset(nil) // drop the net.Conn reference while pooled
	readerPool.Put(r)
}

func (c *streamConn) SetDeadline(t time.Time) error { return c.nc.SetDeadline(t) }

func (c *streamConn) Close() error { return c.nc.Close() }

func (c *streamConn) RemoteAddr() string {
	if a := c.nc.RemoteAddr(); a != nil {
		return a.String()
	}
	return "?"
}

// TCP is the production transport: a TCP listener per address space (the
// bootstrap port) and plain TCP dials, framed with the given protocol.
type TCP struct {
	Proto wire.Protocol
}

// NewTCP returns a TCP transport framing messages with proto.
func NewTCP(proto wire.Protocol) *TCP { return &TCP{Proto: proto} }

// Name implements Transport.
func (t *TCP) Name() string { return "tcp" }

// Listen implements Transport. Use addr ":0" for an ephemeral port.
func (t *TCP) Listen(addr string) (Listener, error) {
	nl, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	return &tcpListener{nl: nl, proto: t.Proto}, nil
}

// Dial implements Transport.
func (t *TCP) Dial(addr string) (Conn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	return NewStreamConn(nc, t.Proto), nil
}

type tcpListener struct {
	nl    net.Listener
	proto wire.Protocol
}

func (l *tcpListener) Accept() (Conn, error) {
	nc, err := l.nl.Accept()
	if err != nil {
		if errors.Is(err, net.ErrClosed) {
			return nil, ErrListenerClosed
		}
		return nil, err
	}
	return NewStreamConn(nc, l.proto), nil
}

func (l *tcpListener) Close() error { return l.nl.Close() }
func (l *tcpListener) Addr() string { return l.nl.Addr().String() }

// Inproc is an in-process transport: listeners register under names in a
// shared namespace and dials create net.Pipe pairs, so the full protocol
// encode/decode path is exercised without sockets.
type Inproc struct {
	Proto wire.Protocol

	mu        sync.Mutex
	listeners map[string]*inprocListener
	nextAuto  int
}

// NewInproc returns an empty in-process namespace.
func NewInproc(proto wire.Protocol) *Inproc {
	return &Inproc{Proto: proto, listeners: make(map[string]*inprocListener)}
}

// Name implements Transport.
func (t *Inproc) Name() string { return "inproc" }

// Listen implements Transport. An empty or ":0" address allocates a fresh
// name.
func (t *Inproc) Listen(addr string) (Listener, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if addr == "" || addr == ":0" {
		t.nextAuto++
		addr = fmt.Sprintf("ep%d", t.nextAuto)
	}
	if _, dup := t.listeners[addr]; dup {
		return nil, fmt.Errorf("transport: inproc address %q in use", addr)
	}
	l := &inprocListener{
		owner: t,
		addr:  addr,
		ch:    make(chan Conn, 8),
		done:  make(chan struct{}),
	}
	t.listeners[addr] = l
	return l, nil
}

// Dial implements Transport.
func (t *Inproc) Dial(addr string) (Conn, error) {
	t.mu.Lock()
	l, ok := t.listeners[addr]
	t.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("transport: no inproc listener at %q", addr)
	}
	client, server := net.Pipe()
	sc := NewStreamConn(server, t.Proto)
	select {
	case l.ch <- sc:
		return NewStreamConn(client, t.Proto), nil
	case <-l.done:
		client.Close()
		server.Close()
		return nil, ErrListenerClosed
	}
}

type inprocListener struct {
	owner *Inproc
	addr  string
	ch    chan Conn
	done  chan struct{}
	once  sync.Once
}

func (l *inprocListener) Accept() (Conn, error) {
	select {
	case c := <-l.ch:
		return c, nil
	case <-l.done:
		return nil, ErrListenerClosed
	}
}

func (l *inprocListener) Close() error {
	l.once.Do(func() {
		close(l.done)
		l.owner.mu.Lock()
		delete(l.owner.listeners, l.addr)
		l.owner.mu.Unlock()
	})
	return nil
}

func (l *inprocListener) Addr() string { return l.addr }
