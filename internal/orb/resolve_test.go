package orb

import (
	"sync"
	"testing"
	"time"
)

// TestResolveReentrantFactory: stub factories are user/generated code and may
// legitimately re-enter the ORB — resolving a nested reference, exporting a
// callback — so Resolve must not hold the ORB lock while running them.
// Before stub construction moved outside the lock this deadlocked.
func TestResolveReentrantFactory(t *testing.T) {
	client, ref, _ := newServerClient(t, tcpCDR)

	const nestedType = "IDL:test/Nested:1.0"
	client.RegisterStubFactory(nestedType, func(o *ORB, r ObjectRef) any {
		return &echoStub{o: o, ref: r}
	})
	client.RegisterStubFactory(echoTypeID, func(o *ORB, r ObjectRef) any {
		nested := r
		nested.TypeID = nestedType
		nested.ObjectID = "nested-999"
		if _, err := o.Resolve(nested); err != nil { // re-entrant Resolve
			t.Errorf("nested Resolve: %v", err)
		}
		return &echoStub{o: o, ref: r}
	})

	done := make(chan any, 1)
	go func() {
		obj, err := client.Resolve(ref)
		if err != nil {
			t.Errorf("Resolve: %v", err)
		}
		done <- obj
	}()
	select {
	case obj := <-done:
		if _, ok := obj.(Echo); !ok {
			t.Fatalf("Resolve returned %T, want an Echo stub", obj)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Resolve deadlocked on a re-entrant stub factory")
	}
}

// TestResolveConcurrentSharesOneStub: when concurrent Resolves race on a
// cache miss, every caller must end up with the same cached stub instance
// (§3.1's shared stub cache), however the insert race resolves.
func TestResolveConcurrentSharesOneStub(t *testing.T) {
	client, ref, _ := newServerClient(t, tcpCDR)

	const n = 16
	results := make([]any, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			obj, err := client.Resolve(ref)
			if err != nil {
				t.Errorf("Resolve: %v", err)
				return
			}
			results[i] = obj
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if results[i] != results[0] {
			t.Fatal("concurrent Resolve handed out distinct stub instances")
		}
	}
}
