// Command writeidl syncs the idl/ directory from the idltest fixtures.
package main

import (
	"os"

	"repro/internal/idl/idltest"
)

func main() {
	files := map[string]string{
		"idl/A.idl":        idltest.AIDLComplete,
		"idl/Afig3.idl":    idltest.AIDL,
		"idl/Receiver.idl": idltest.ReceiverIDL,
		"idl/media.idl":    idltest.MediaIDL,
		"idl/calc.idl":     idltest.CalcIDL,
		"idl/naming.idl":   idltest.NamingIDL,
	}
	for path, src := range files {
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			panic(err)
		}
	}
}
