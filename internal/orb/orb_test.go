package orb

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/heidi"
	"repro/internal/transport"
	"repro/internal/wire"
)

// The hand-written bindings below have exactly the shape the Go mapping
// generates (internal/mappings, "go" mapping); keeping them in sync pins
// the generated-code API.

// Echo is the Go mapping of:
//
//	interface Echo {
//	  string echo(in string s);
//	  long add(in long a, in long b);
//	  void ping();
//	  oneway void poke();
//	  void fail(in string why);
//	};
type Echo interface {
	Echo(s string) (string, error)
	Add(a, b int32) (int32, error)
	Ping() error
	Poke() error
	Fail(why string) error
}

const echoTypeID = "IDL:test/Echo:1.0"

// FailError is the generated user-exception type for "fail".
type FailError struct{ Why string }

func (e *FailError) Error() string { return "Echo::Fail: " + e.Why }
func (e *FailError) HdUserError()  {}

type echoStub struct {
	o   *ORB
	ref ObjectRef
}

func (s *echoStub) HdRef() ObjectRef { return s.ref }

func (s *echoStub) Echo(v string) (string, error) {
	c, err := s.o.NewCall(s.ref, "echo")
	if err != nil {
		return "", err
	}
	defer c.Release()
	c.PutString(v)
	if err := c.Invoke(); err != nil {
		return "", err
	}
	return c.GetString()
}

func (s *echoStub) Add(a, b int32) (int32, error) {
	c, err := s.o.NewCall(s.ref, "add")
	if err != nil {
		return 0, err
	}
	defer c.Release()
	c.PutLong(a)
	c.PutLong(b)
	if err := c.Invoke(); err != nil {
		return 0, err
	}
	return c.GetLong()
}

func (s *echoStub) Ping() error {
	c, err := s.o.NewCall(s.ref, "ping")
	if err != nil {
		return err
	}
	defer c.Release()
	return c.Invoke()
}

func (s *echoStub) Poke() error {
	c, err := s.o.NewCall(s.ref, "poke")
	if err != nil {
		return err
	}
	defer c.Release()
	return c.InvokeOneway()
}

func (s *echoStub) Fail(why string) error {
	c, err := s.o.NewCall(s.ref, "fail")
	if err != nil {
		return err
	}
	defer c.Release()
	c.PutString(why)
	return c.Invoke()
}

// NewEchoTable is the generated delegation skeleton for Echo.
func NewEchoTable(impl Echo) *MethodTable {
	t := NewMethodTable(echoTypeID)
	t.Register("echo", func(c *ServerCall) error {
		s, err := c.GetString()
		if err != nil {
			return err
		}
		r, err := impl.Echo(s)
		if err != nil {
			return err
		}
		c.PutString(r)
		return nil
	})
	t.Register("add", func(c *ServerCall) error {
		a, err := c.GetLong()
		if err != nil {
			return err
		}
		b, err := c.GetLong()
		if err != nil {
			return err
		}
		r, err := impl.Add(a, b)
		if err != nil {
			return err
		}
		c.PutLong(r)
		return nil
	})
	t.Register("ping", func(c *ServerCall) error { return impl.Ping() })
	t.Register("poke", func(c *ServerCall) error { return impl.Poke() })
	t.Register("fail", func(c *ServerCall) error {
		why, err := c.GetString()
		if err != nil {
			return err
		}
		return impl.Fail(why)
	})
	return t
}

func registerEchoStub(o *ORB) {
	o.RegisterStubFactory(echoTypeID, func(o *ORB, ref ObjectRef) any {
		return &echoStub{o: o, ref: ref}
	})
}

// echoImpl is the "legacy" implementation object; note it has no relation
// to any generated type beyond satisfying Echo (the delegation model).
type echoImpl struct {
	mu    sync.Mutex
	pokes int
	poked chan struct{}
}

func (e *echoImpl) Echo(s string) (string, error) { return s, nil }
func (e *echoImpl) Add(a, b int32) (int32, error) { return a + b, nil }
func (e *echoImpl) Ping() error                   { return nil }
func (e *echoImpl) Poke() error {
	e.mu.Lock()
	e.pokes++
	e.mu.Unlock()
	if e.poked != nil {
		e.poked <- struct{}{}
	}
	return nil
}
func (e *echoImpl) Fail(why string) error { return &FailError{Why: why} }

// newServerClient starts a server ORB exporting an echoImpl and a separate
// client ORB, over the given protocol/transport.
func newServerClient(t testing.TB, mk func() Options) (client *ORB, ref ObjectRef, impl *echoImpl) {
	t.Helper()
	impl = &echoImpl{}

	server := New(mk())
	if err := server.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { server.Shutdown() })
	ref, err := server.Export(impl, NewEchoTable(impl))
	if err != nil {
		t.Fatal(err)
	}

	client = New(mk())
	registerEchoStub(client)
	t.Cleanup(func() { client.Shutdown() })
	return client, ref, impl
}

func tcpText() Options { return Options{Protocol: wire.Text} }
func tcpCDR() Options  { return Options{Protocol: wire.CDR} }

func configs() map[string]func() Options {
	return map[string]func() Options{
		"tcp-text": tcpText,
		"tcp-cdr":  tcpCDR,
	}
}

func TestRemoteCallRoundTrip(t *testing.T) {
	for name, mk := range configs() {
		t.Run(name, func(t *testing.T) {
			client, ref, _ := newServerClient(t, mk)
			obj, err := client.Resolve(ref)
			if err != nil {
				t.Fatal(err)
			}
			echo := obj.(Echo)

			if got, err := echo.Echo("hello remote"); err != nil || got != "hello remote" {
				t.Errorf("Echo = %q, %v", got, err)
			}
			if got, err := echo.Add(40, 2); err != nil || got != 42 {
				t.Errorf("Add = %d, %v", got, err)
			}
			if err := echo.Ping(); err != nil {
				t.Errorf("Ping: %v", err)
			}
		})
	}
}

func TestUserException(t *testing.T) {
	client, ref, _ := newServerClient(t, tcpText)
	obj, _ := client.Resolve(ref)
	err := obj.(Echo).Fail("bad input")
	if err == nil {
		t.Fatal("Fail returned nil")
	}
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("error type %T", err)
	}
	if re.Status != wire.StatusUserException {
		t.Errorf("status = %s, want user-exception", re.Status)
	}
	if !strings.Contains(re.Msg, "bad input") {
		t.Errorf("msg = %q", re.Msg)
	}
}

func TestUnknownMethod(t *testing.T) {
	client, ref, _ := newServerClient(t, tcpText)
	c, err := client.NewCall(ref, "no_such_method")
	if err != nil {
		t.Fatal(err)
	}
	err = c.Invoke()
	if !errors.Is(err, ErrUnknownMethod) {
		t.Errorf("err = %v, want ErrUnknownMethod", err)
	}
}

func TestUnknownObject(t *testing.T) {
	client, ref, _ := newServerClient(t, tcpText)
	bogus := ref
	bogus.ObjectID = "999999"
	c, err := client.NewCall(bogus, "ping")
	if err != nil {
		t.Fatal(err)
	}
	err = c.Invoke()
	if !errors.Is(err, ErrUnknownObject) {
		t.Errorf("err = %v, want ErrUnknownObject", err)
	}
}

func TestOneway(t *testing.T) {
	impl := &echoImpl{poked: make(chan struct{}, 1)}
	server := New(tcpText())
	if err := server.Start(); err != nil {
		t.Fatal(err)
	}
	defer server.Shutdown()
	ref, err := server.Export(impl, NewEchoTable(impl))
	if err != nil {
		t.Fatal(err)
	}
	client := New(tcpText())
	registerEchoStub(client)
	defer client.Shutdown()

	obj, _ := client.Resolve(ref)
	if err := obj.(Echo).Poke(); err != nil {
		t.Fatal(err)
	}
	<-impl.poked // delivered without a reply
	st := client.Stats()
	if st.OnewaysSent != 1 || st.CallsSent != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestConcurrentCalls(t *testing.T) {
	client, ref, _ := newServerClient(t, tcpCDR)
	obj, _ := client.Resolve(ref)
	echo := obj.(Echo)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				want := fmt.Sprintf("msg-%d-%d", g, i)
				got, err := echo.Echo(want)
				if err != nil || got != want {
					t.Errorf("Echo(%q) = %q, %v", want, got, err)
					return
				}
				if sum, err := echo.Add(int32(g), int32(i)); err != nil || sum != int32(g+i) {
					t.Errorf("Add = %d, %v", sum, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestStubCaching(t *testing.T) {
	client, ref, _ := newServerClient(t, tcpText)
	s1, err := client.Resolve(ref)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := client.Resolve(ref)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Error("stub not cached: distinct instances for same ref")
	}
	st := client.Stats()
	if st.StubsCreated != 1 || st.StubCacheHits != 1 {
		t.Errorf("stats = %+v, want 1 created, 1 hit", st)
	}

	// Ablation: caching disabled yields fresh stubs.
	client2 := New(Options{Protocol: wire.Text, DisableStubCache: true})
	registerEchoStub(client2)
	defer client2.Shutdown()
	a, _ := client2.Resolve(ref)
	b, _ := client2.Resolve(ref)
	if a == b {
		t.Error("DisableStubCache still returned the cached stub")
	}
}

func TestResolveCollocated(t *testing.T) {
	impl := &echoImpl{}
	server := New(tcpText())
	if err := server.Start(); err != nil {
		t.Fatal(err)
	}
	defer server.Shutdown()
	ref, err := server.Export(impl, NewEchoTable(impl))
	if err != nil {
		t.Fatal(err)
	}
	got, err := server.Resolve(ref)
	if err != nil {
		t.Fatal(err)
	}
	if got != any(impl) {
		t.Error("collocated resolve should return the implementation itself")
	}
}

func TestResolveErrors(t *testing.T) {
	client := New(tcpText())
	defer client.Shutdown()
	// No factory registered.
	ref := ObjectRef{Proto: "tcp", Addr: "h:1", ObjectID: "1", TypeID: "IDL:Nope:1.0"}
	if _, err := client.Resolve(ref); err == nil {
		t.Error("Resolve without factory should fail")
	}
	// Nil ref resolves to nil object.
	if obj, err := client.Resolve(ObjectRef{}); err != nil || obj != nil {
		t.Errorf("Resolve(nil) = %v, %v", obj, err)
	}
}

func TestExportIdempotent(t *testing.T) {
	impl := &echoImpl{}
	server := New(tcpText())
	if err := server.Start(); err != nil {
		t.Fatal(err)
	}
	defer server.Shutdown()
	r1, err := server.Export(impl, NewEchoTable(impl))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := server.Export(impl, NewEchoTable(impl))
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Error("re-export produced a different reference (skeleton cache miss)")
	}
	if server.Stats().SkeletonsCreated != 1 {
		t.Errorf("skeletons = %d, want 1", server.Stats().SkeletonsCreated)
	}

	server.Unexport(impl)
	if _, err := server.Resolve(r1); !errors.Is(err, ErrUnknownObject) {
		t.Errorf("resolve after unexport = %v", err)
	}
}

func TestExportBeforeStart(t *testing.T) {
	o := New(tcpText())
	defer o.Shutdown()
	impl := &echoImpl{}
	if _, err := o.Export(impl, NewEchoTable(impl)); err == nil {
		t.Error("Export before Start should fail (no bootstrap endpoint)")
	}
}

func TestShutdownSemantics(t *testing.T) {
	o := New(tcpText())
	if err := o.Start(); err != nil {
		t.Fatal(err)
	}
	if err := o.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if err := o.Shutdown(); err != nil {
		t.Errorf("double shutdown: %v", err)
	}
	impl := &echoImpl{}
	if _, err := o.Export(impl, NewEchoTable(impl)); !errors.Is(err, ErrShutdown) {
		t.Errorf("Export after shutdown = %v", err)
	}
	if err := o.Start(); !errors.Is(err, ErrShutdown) {
		t.Errorf("Start after shutdown = %v", err)
	}
}

func TestDoubleInvoke(t *testing.T) {
	client, ref, _ := newServerClient(t, tcpText)
	c, err := client.NewCall(ref, "ping")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Invoke(); err != nil {
		t.Fatal(err)
	}
	if err := c.Invoke(); err == nil {
		t.Error("second Invoke should fail")
	}
}

func TestCallOnNilRef(t *testing.T) {
	client := New(tcpText())
	defer client.Shutdown()
	if _, err := client.NewCall(ObjectRef{}, "m"); err == nil {
		t.Error("NewCall on nil ref should fail")
	}
}

func TestInprocTransport(t *testing.T) {
	inproc := transport.NewInproc(wire.Text)
	mk := func() Options {
		return Options{Protocol: wire.Text, Transport: inproc, ListenAddr: ":0"}
	}
	client, ref, _ := newServerClient(t, mk)
	obj, err := client.Resolve(ref)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := obj.(Echo).Echo("via inproc"); err != nil || got != "via inproc" {
		t.Errorf("Echo = %q, %v", got, err)
	}
	if ref.Proto != "inproc" {
		t.Errorf("ref proto = %q", ref.Proto)
	}
}

// --- pass-by-reference and incopy --------------------------------------------

// Greeter exercises object-valued parameters:
//
//	interface Greeter {
//	  string greet(in Echo who);       // by reference
//	  string describe(incopy Note n);  // by value when possible
//	};
type Greeter interface {
	Greet(who Echo) (string, error)
	Describe(n any) (string, error)
}

const greeterTypeID = "IDL:test/Greeter:1.0"

type greeterStub struct {
	o   *ORB
	ref ObjectRef
}

func (s *greeterStub) HdRef() ObjectRef { return s.ref }

func (s *greeterStub) Greet(who Echo) (string, error) {
	c, err := s.o.NewCall(s.ref, "greet")
	if err != nil {
		return "", err
	}
	defer c.Release()
	// Lazy export with the type-specific skeleton constructor, exactly
	// what the generated stub emits for an objref parameter.
	if err := c.PutObject(who, func() *MethodTable { return NewEchoTable(who) }); err != nil {
		return "", err
	}
	if err := c.Invoke(); err != nil {
		return "", err
	}
	return c.GetString()
}

func (s *greeterStub) Describe(n any) (string, error) {
	c, err := s.o.NewCall(s.ref, "describe")
	if err != nil {
		return "", err
	}
	defer c.Release()
	if err := c.PutObjectIncopy(n, nil); err != nil {
		return "", err
	}
	if err := c.Invoke(); err != nil {
		return "", err
	}
	return c.GetString()
}

func newGreeterTable(impl Greeter) *MethodTable {
	t := NewMethodTable(greeterTypeID)
	t.Register("greet", func(c *ServerCall) error {
		obj, err := c.GetObject()
		if err != nil {
			return err
		}
		echo, ok := obj.(Echo)
		if !ok {
			return fmt.Errorf("greet: got %T", obj)
		}
		r, err := impl.Greet(echo)
		if err != nil {
			return err
		}
		c.PutString(r)
		return nil
	})
	t.Register("describe", func(c *ServerCall) error {
		obj, err := c.GetObjectIncopy()
		if err != nil {
			return err
		}
		r, err := impl.Describe(obj)
		if err != nil {
			return err
		}
		c.PutString(r)
		return nil
	})
	return t
}

// greeterImpl calls back into the Echo object it is handed.
type greeterImpl struct{}

func (greeterImpl) Greet(who Echo) (string, error) {
	r, err := who.Echo("callback")
	if err != nil {
		return "", fmt.Errorf("callback failed: %w", err)
	}
	return "greeted:" + r, nil
}

func (greeterImpl) Describe(n any) (string, error) {
	switch v := n.(type) {
	case *Note:
		return fmt.Sprintf("note(value):%s/%d", v.Text, v.Prio), nil
	case Echo:
		r, _ := v.Echo("ref")
		return "echo(ref):" + r, nil
	default:
		return "", fmt.Errorf("describe: unexpected %T", n)
	}
}

// Note is a Serializable Heidi object (pass-by-value eligible).
type Note struct {
	Text string
	Prio int32
}

const noteTypeName = "test.Note"

func (n *Note) HdTypeName() string { return noteTypeName }
func (n *Note) HdMarshal(w heidi.Writer) error {
	w.PutString(n.Text)
	w.PutLong(n.Prio)
	return nil
}
func (n *Note) HdUnmarshal(r heidi.Reader) error {
	var err error
	if n.Text, err = r.GetString(); err != nil {
		return err
	}
	if n.Prio, err = r.GetLong(); err != nil {
		return err
	}
	return nil
}

func init() {
	heidi.RegisterType(noteTypeName, func() heidi.Serializable { return &Note{} })
}

// TestPassByReferenceWithCallback: client passes its *local* Echo impl to a
// remote Greeter; the ORB lazily exports it (creating the skeleton only
// when the reference is passed, §3.1) and the server calls back over the
// wire.
func TestPassByReferenceWithCallback(t *testing.T) {
	server := New(tcpText())
	if err := server.Start(); err != nil {
		t.Fatal(err)
	}
	defer server.Shutdown()
	registerEchoStub(server) // server resolves the callback stub
	gref, err := server.Export(greeterImpl{}, newGreeterTable(greeterImpl{}))
	if err != nil {
		t.Fatal(err)
	}

	client := New(tcpText())
	if err := client.Start(); err != nil { // client must serve the callback
		t.Fatal(err)
	}
	defer client.Shutdown()
	client.RegisterStubFactory(greeterTypeID, func(o *ORB, ref ObjectRef) any {
		return &greeterStub{o: o, ref: ref}
	})

	obj, err := client.Resolve(gref)
	if err != nil {
		t.Fatal(err)
	}
	local := &echoImpl{}
	if n := client.Stats().SkeletonsCreated; n != 0 {
		t.Fatalf("premature skeletons: %d", n)
	}
	got, err := obj.(Greeter).Greet(local)
	if err != nil {
		t.Fatal(err)
	}
	if got != "greeted:callback" {
		t.Errorf("Greet = %q", got)
	}
	if n := client.Stats().SkeletonsCreated; n != 1 {
		t.Errorf("skeletons after passing reference = %d, want 1 (lazy creation)", n)
	}
}

// TestIncopyByValue: a Serializable argument crosses the interface by value
// — the receiver gets a fresh local copy and no skeleton is ever created
// (§3.1: "if the implementation object is Serializable and is being
// passed-by-value, then no skeleton is ever created").
func TestIncopyByValue(t *testing.T) {
	server := New(tcpCDR())
	if err := server.Start(); err != nil {
		t.Fatal(err)
	}
	defer server.Shutdown()
	gref, err := server.Export(greeterImpl{}, newGreeterTable(greeterImpl{}))
	if err != nil {
		t.Fatal(err)
	}

	client := New(tcpCDR())
	defer client.Shutdown()
	client.RegisterStubFactory(greeterTypeID, func(o *ORB, ref ObjectRef) any {
		return &greeterStub{o: o, ref: ref}
	})
	obj, err := client.Resolve(gref)
	if err != nil {
		t.Fatal(err)
	}

	got, err := obj.(Greeter).Describe(&Note{Text: "urgent", Prio: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got != "note(value):urgent/3" {
		t.Errorf("Describe = %q", got)
	}
	if n := client.Stats().SkeletonsCreated; n != 0 {
		t.Errorf("by-value pass created %d skeletons, want 0", n)
	}
}

// TestIncopyFallsBackToReference: a non-Serializable argument passed incopy
// travels by reference ("copied across the IDL interface, if possible" —
// here it is not possible).
func TestIncopyFallsBackToReference(t *testing.T) {
	server := New(tcpText())
	if err := server.Start(); err != nil {
		t.Fatal(err)
	}
	defer server.Shutdown()
	registerEchoStub(server)
	gref, err := server.Export(greeterImpl{}, newGreeterTable(greeterImpl{}))
	if err != nil {
		t.Fatal(err)
	}

	client := New(tcpText())
	if err := client.Start(); err != nil {
		t.Fatal(err)
	}
	defer client.Shutdown()
	client.RegisterStubFactory(greeterTypeID, func(o *ORB, ref ObjectRef) any {
		return &greeterStub{o: o, ref: ref}
	})
	obj, err := client.Resolve(gref)
	if err != nil {
		t.Fatal(err)
	}

	// echoImpl is not Serializable: must fall back to by-reference. The
	// stub's Describe passes nil mkTable, so the fallback needs the
	// object already exported.
	local := &echoImpl{}
	if _, err := client.Export(local, NewEchoTable(local)); err != nil {
		t.Fatal(err)
	}
	got, err := obj.(Greeter).Describe(local)
	if err != nil {
		t.Fatal(err)
	}
	if got != "echo(ref):ref" {
		t.Errorf("Describe = %q", got)
	}
}

func TestIncopyUnexportableFails(t *testing.T) {
	client := New(tcpText())
	defer client.Shutdown()
	c := &ClientCall{callBase: callBase{orb: client, enc: wire.Text.NewEncoder()}}
	type opaque struct{ int }
	err := c.PutObjectIncopy(&opaque{}, nil)
	if !errors.Is(err, ErrNotExportable) {
		t.Errorf("err = %v, want ErrNotExportable", err)
	}
}
