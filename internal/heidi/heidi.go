// Package heidi is a miniature of the legacy Heidi code-base that motivates
// §3 of "Customizing IDL Mappings and ORB Protocols": the in-house data
// types (XBool, HdList), the dynamic type-checking support "which all Heidi
// classes provide", and the HdSerializable marshaling contract that
// HeidiRMI's pass-by-value (incopy) relies on.
//
// The HeidiRMI mapping exists precisely so that interfaces written in IDL
// can be implemented with these pre-existing types unchanged; the ORB
// runtime in package orb consumes them exactly the way the paper describes
// (testing an object for HdSerializable before copying it across the
// interface).
package heidi

import "fmt"

// XBool is Heidi's legacy boolean type (Table 1: IDL boolean maps to XBool
// in the alternate mapping).
type XBool bool

// Legacy boolean constants; the HeidiRMI mapping renders IDL TRUE/FALSE
// defaults as XTrue/XFalse (Fig. 3).
const (
	XTrue  XBool = true
	XFalse XBool = false
)

// String renders the legacy spelling.
func (b XBool) String() string {
	if b {
		return "XTrue"
	}
	return "XFalse"
}

// HdList is Heidi's legacy growable list type; IDL sequences map to it
// (Fig. 3: typedef HdList<HdS> HdSSequence).
type HdList[T any] struct {
	items []T
}

// NewHdList returns a list pre-sized for n elements.
func NewHdList[T any](n int) *HdList[T] {
	return &HdList[T]{items: make([]T, 0, n)}
}

// HdListOf builds a list from the given elements.
func HdListOf[T any](items ...T) *HdList[T] {
	l := NewHdList[T](len(items))
	l.items = append(l.items, items...)
	return l
}

// Append adds an element to the end of the list.
func (l *HdList[T]) Append(v T) { l.items = append(l.items, v) }

// Len returns the number of elements.
func (l *HdList[T]) Len() int { return len(l.items) }

// At returns the i'th element; out-of-range access panics like a slice.
func (l *HdList[T]) At(i int) T { return l.items[i] }

// Set replaces the i'th element.
func (l *HdList[T]) Set(i int, v T) { l.items[i] = v }

// Items returns the backing slice (shared, not copied).
func (l *HdList[T]) Items() []T { return l.items }

// Iterator returns an HdListIterator positioned before the first element
// (Fig. 3: typedef HdListIterator<HdS> HdSSequenceIter).
func (l *HdList[T]) Iterator() *HdListIterator[T] {
	return &HdListIterator[T]{list: l, pos: -1}
}

// HdListIterator is the legacy explicit iterator over an HdList.
type HdListIterator[T any] struct {
	list *HdList[T]
	pos  int
}

// Next advances the iterator and reports whether an element is available.
func (it *HdListIterator[T]) Next() bool {
	if it.pos+1 >= it.list.Len() {
		return false
	}
	it.pos++
	return true
}

// Value returns the current element; calling Value before the first Next or
// after Next returned false panics.
func (it *HdListIterator[T]) Value() T {
	if it.pos < 0 || it.pos >= it.list.Len() {
		panic(fmt.Sprintf("heidi: iterator position %d out of range [0,%d)", it.pos, it.list.Len()))
	}
	return it.list.At(it.pos)
}

// Reset repositions the iterator before the first element.
func (it *HdListIterator[T]) Reset() { it.pos = -1 }
