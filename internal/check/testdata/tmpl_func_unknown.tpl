@foreach interfaceList -map interfaceName No::Such
${interfaceName}
@end
