package idl

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Error is a diagnostic tied to a source position.
type Error struct {
	Pos Pos
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string {
	return fmt.Sprintf("%s: %s", e.Pos, e.Msg)
}

// ErrorList accumulates diagnostics produced by the lexer, parser and
// resolver. A nil or empty list means success.
type ErrorList []*Error

// Add appends a new diagnostic at pos.
func (l *ErrorList) Add(pos Pos, format string, args ...any) {
	*l = append(*l, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

// Sort orders the list by file, then line, then column, then message, so
// diagnostics from multiple passes (and included files) render in source
// order rather than discovery order.
func (l ErrorList) Sort() {
	sort.SliceStable(l, func(i, j int) bool {
		a, b := l[i], l[j]
		if a.Pos.File != b.Pos.File {
			return a.Pos.File < b.Pos.File
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Msg < b.Msg
	})
}

// Sorted returns a sorted copy of the list with exact duplicates (same
// position and message) removed. The receiver is not modified.
func (l ErrorList) Sorted() ErrorList {
	out := make(ErrorList, len(l))
	copy(out, l)
	out.Sort()
	dedup := out[:0]
	for _, e := range out {
		if n := len(dedup); n > 0 && dedup[n-1].Pos == e.Pos && dedup[n-1].Msg == e.Msg {
			continue
		}
		dedup = append(dedup, e)
	}
	return dedup
}

// Error implements the error interface by joining the first few diagnostics,
// sorted by position and deduplicated.
func (l ErrorList) Error() string {
	sorted := l.Sorted()
	switch len(sorted) {
	case 0:
		return "no errors"
	case 1:
		return sorted[0].Error()
	}
	var b strings.Builder
	for i, e := range sorted {
		if i > 0 {
			b.WriteString("\n")
		}
		if i == 8 {
			fmt.Fprintf(&b, "... and %d more errors", len(sorted)-i)
			break
		}
		b.WriteString(e.Error())
	}
	return b.String()
}

// Err returns the list as an error, or nil if it is empty.
func (l ErrorList) Err() error {
	if len(l) == 0 {
		return nil
	}
	return l
}

// ErrNotFound is returned by lookup helpers when a scoped name does not
// resolve to any declaration.
var ErrNotFound = errors.New("idl: name not found")
