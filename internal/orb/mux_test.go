package orb

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/transport"
	"repro/internal/wire"
)

// --- multiplexed invocation path ---------------------------------------------

func muxConfigs() map[string]func() Options {
	return map[string]func() Options{
		"tcp-text": func() Options {
			return Options{Protocol: wire.Text, Multiplex: true, MaxConcurrentPerConn: 8}
		},
		"tcp-cdr": func() Options {
			return Options{Protocol: wire.CDR, Multiplex: true, MaxConcurrentPerConn: 8}
		},
	}
}

func TestMuxRemoteCallRoundTrip(t *testing.T) {
	for name, mk := range muxConfigs() {
		t.Run(name, func(t *testing.T) {
			client, ref, _ := newServerClient(t, mk)
			obj, err := client.Resolve(ref)
			if err != nil {
				t.Fatal(err)
			}
			echo := obj.(Echo)

			if got, err := echo.Echo("over shared conn"); err != nil || got != "over shared conn" {
				t.Errorf("Echo = %q, %v", got, err)
			}
			if got, err := echo.Add(40, 2); err != nil || got != 42 {
				t.Errorf("Add = %d, %v", got, err)
			}
			if err := echo.Poke(); err != nil {
				t.Errorf("Poke (oneway): %v", err)
			}
			if err := echo.Fail("boom"); err == nil {
				t.Error("Fail did not surface the user exception")
			}

			st := client.Stats()
			if st.MuxCalls < 4 {
				t.Errorf("MuxCalls = %d, want >= 4", st.MuxCalls)
			}
			if d := client.PoolStats().Dials; d != 0 {
				t.Errorf("exclusive pool dialed %d times on the mux path", d)
			}
			if ms := client.MuxStats(); ms.Dials != 1 || ms.Active != 1 {
				t.Errorf("MuxStats = %+v, want exactly one shared connection", ms)
			}
		})
	}
}

// TestMuxConcurrentCallsOneConnection: 8 callers x 100 calls ride a single
// shared connection end to end (client demux + server worker pool), with the
// exclusive pool never touched.
func TestMuxConcurrentCallsOneConnection(t *testing.T) {
	mk := func() Options {
		return Options{Protocol: wire.CDR, Multiplex: true, MaxConcurrentPerConn: 16}
	}
	client, ref, _ := newServerClient(t, mk)
	obj, err := client.Resolve(ref)
	if err != nil {
		t.Fatal(err)
	}
	echo := obj.(Echo)

	const callers, perCaller = 8, 100
	errs := make(chan error, callers)
	for g := 0; g < callers; g++ {
		go func(g int) {
			for i := 0; i < perCaller; i++ {
				a, b := int32(g), int32(i)
				got, err := echo.Add(a, b)
				if err != nil {
					errs <- err
					return
				}
				if got != a+b {
					errs <- &FailError{Why: "wrong sum"}
					return
				}
			}
			errs <- nil
		}(g)
	}
	for g := 0; g < callers; g++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if ms := client.MuxStats(); ms.Dials != 1 {
		t.Errorf("MuxStats.Dials = %d, want 1 shared connection for all %d calls", ms.Dials, callers*perCaller)
	}
	if d := client.PoolStats().Dials; d != 0 {
		t.Errorf("exclusive pool dialed %d times on the mux path", d)
	}
	if got := client.Stats().MuxCalls; got != callers*perCaller {
		t.Errorf("MuxCalls = %d, want %d", got, callers*perCaller)
	}
}

// --- mid-stream kill semantics ----------------------------------------------

// blockTypeID is a one-method interface whose handler parks until released,
// letting tests hold a known number of calls in flight.
const blockTypeID = "IDL:test/Block:1.0"

type blockImpl struct {
	blocking int32 // 1: handlers park on release; 0: return immediately
	entered  int32 // handlers that reached the park
	release  chan struct{}
}

func newBlockTable(b *blockImpl) *MethodTable {
	return NewMethodTable(blockTypeID).Register("block", func(*ServerCall) error {
		if atomic.LoadInt32(&b.blocking) == 1 {
			atomic.AddInt32(&b.entered, 1)
			<-b.release
		}
		return nil
	})
}

// captureTransport records every dialed connection so tests can kill the
// shared client connection mid-flight.
type captureTransport struct {
	transport.Transport
	mu    sync.Mutex
	conns []transport.Conn
}

func (t *captureTransport) Dial(addr string) (transport.Conn, error) {
	c, err := t.Transport.Dial(addr)
	if err == nil {
		t.mu.Lock()
		t.conns = append(t.conns, c)
		t.mu.Unlock()
	}
	return c, err
}

func (t *captureTransport) killAll() {
	t.mu.Lock()
	conns := t.conns
	t.conns = nil
	t.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

// TestMuxConnKillFailsInFlight holds 8 calls in flight on one shared
// connection (which also proves the server dispatches them concurrently:
// with serial dispatch only one would reach the servant), kills the
// connection, and checks the failure semantics the design demands:
//
//   - every in-flight call fails;
//   - the failure is classified ambiguous, so plain calls are NOT retried
//     even with a retry policy enabled, while idempotent calls are retried
//     and succeed over a redialed connection;
//   - the next call after the kill transparently redials.
func TestMuxConnKillFailsInFlight(t *testing.T) {
	for _, idem := range []bool{false, true} {
		name := "ambiguous-not-retried"
		if idem {
			name = "idempotent-retried"
		}
		t.Run(name, func(t *testing.T) {
			inner := transport.NewInproc(wire.CDR)
			impl := &blockImpl{blocking: 1, release: make(chan struct{})}
			server := New(Options{
				Protocol: wire.CDR, Transport: inner, ListenAddr: ":0",
				MaxConcurrentPerConn: 16,
			})
			if err := server.Start(); err != nil {
				t.Fatal(err)
			}
			defer server.Shutdown()
			ref, err := server.Export(impl, newBlockTable(impl))
			if err != nil {
				t.Fatal(err)
			}

			ct := &captureTransport{Transport: inner}
			client := New(Options{
				Protocol: wire.CDR, Transport: ct,
				Multiplex: true,
				Retry:     RetryPolicy{MaxAttempts: 3},
			})
			defer client.Shutdown()

			const n = 8
			errs := make(chan error, n)
			for i := 0; i < n; i++ {
				go func() {
					c, err := client.NewCall(ref, "block")
					if err != nil {
						errs <- err
						return
					}
					c.SetIdempotent(idem)
					errs <- c.Invoke()
				}()
			}
			// Every call provably on the wire and mid-dispatch: all n
			// handlers are parked inside the servant concurrently.
			deadline := time.Now().Add(5 * time.Second)
			for atomic.LoadInt32(&impl.entered) < n && time.Now().Before(deadline) {
				time.Sleep(time.Millisecond)
			}
			if got := atomic.LoadInt32(&impl.entered); got != n {
				t.Fatalf("only %d of %d calls reached the servant concurrently", got, n)
			}
			if idem {
				// Retried calls must complete instead of parking again.
				atomic.StoreInt32(&impl.blocking, 0)
			}

			ct.killAll() // mid-stream kill of the shared connection

			var failed, succeeded int
			for i := 0; i < n; i++ {
				if err := <-errs; err != nil {
					failed++
				} else {
					succeeded++
				}
			}
			atomic.StoreInt32(&impl.blocking, 0)
			close(impl.release) // free parked handlers so Shutdown drains

			if idem {
				if succeeded != n {
					t.Errorf("%d of %d idempotent calls failed despite retries", failed, n)
				}
				if r := client.Stats().Retries; r < n {
					t.Errorf("Retries = %d, want >= %d (one per killed in-flight call)", r, n)
				}
			} else {
				if failed != n {
					t.Errorf("%d of %d in-flight calls survived the connection kill", succeeded, n)
				}
				if r := client.Stats().Retries; r != 0 {
					t.Errorf("ambiguous failures were retried %d times; non-idempotent calls must not be", r)
				}
			}

			// The next call transparently redials a fresh shared connection.
			c, err := client.NewCall(ref, "block")
			if err != nil {
				t.Fatal(err)
			}
			if err := c.Invoke(); err != nil {
				t.Fatalf("call after kill: %v", err)
			}
			if st := client.MuxStats(); st.Redials == 0 {
				t.Errorf("no redial recorded after kill: %+v", st)
			}
		})
	}
}

// TestMuxCallTimeoutSparesConnection: CallTimeout on the mux path is a
// per-call timer, not a connection deadline — a timed-out call fails alone
// and later calls reuse the same shared connection.
func TestMuxCallTimeoutSparesConnection(t *testing.T) {
	inner := transport.NewInproc(wire.CDR)
	impl := &blockImpl{blocking: 1, release: make(chan struct{})}
	server := New(Options{
		Protocol: wire.CDR, Transport: inner, ListenAddr: ":0",
		MaxConcurrentPerConn: 4,
	})
	if err := server.Start(); err != nil {
		t.Fatal(err)
	}
	defer server.Shutdown()
	ref, err := server.Export(impl, newBlockTable(impl))
	if err != nil {
		t.Fatal(err)
	}

	client := New(Options{
		Protocol: wire.CDR, Transport: inner,
		Multiplex:   true,
		CallTimeout: 30 * time.Millisecond,
	})
	defer client.Shutdown()

	c, err := client.NewCall(ref, "block")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Invoke(); err == nil {
		t.Fatal("blocked call did not time out")
	}
	atomic.StoreInt32(&impl.blocking, 0)
	close(impl.release)

	// The shared connection survived the timeout: the next call succeeds
	// without a redial.
	c2, err := client.NewCall(ref, "block")
	if err != nil {
		t.Fatal(err)
	}
	if err := c2.Invoke(); err != nil {
		t.Fatalf("call after per-call timeout: %v", err)
	}
	if st := client.MuxStats(); st.Dials != 1 || st.Redials != 0 {
		t.Errorf("MuxStats = %+v, want the original connection still in use", st)
	}
}
