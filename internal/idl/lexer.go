package idl

import (
	"strings"
	"unicode"
	"unicode/utf8"
)

// Lexer converts IDL source text into a token stream. It recognises the
// complete token set in token.go, skips //- and /* */-style comments, and
// surfaces preprocessor lines (#pragma, #include) as structured directives
// via the Pragmas field rather than tokens, matching how classic IDL
// compilers treat a pre-processed translation unit.
type Lexer struct {
	src    string
	file   string
	off    int // byte offset of next rune
	line   int
	col    int
	errs   *ErrorList
	direct []Directive // collected preprocessor directives, in order
}

// Directive is a preprocessor line encountered during lexing, e.g.
// "#pragma prefix \"ccrl.nj.nec.com\"" or "#include <orb.idl>".
type Directive struct {
	Pos  Pos
	Name string   // "pragma" or "include"
	Args []string // tokenized remainder, quotes stripped
}

// NewLexer returns a lexer over src. The file name is used only for
// positions in diagnostics. Diagnostics are appended to errs, which must be
// non-nil.
func NewLexer(file, src string, errs *ErrorList) *Lexer {
	return &Lexer{src: src, file: file, line: 1, col: 1, errs: errs}
}

// Directives returns the preprocessor directives seen so far, in source
// order. It is typically called after the token stream is exhausted.
func (lx *Lexer) Directives() []Directive { return lx.direct }

func (lx *Lexer) pos() Pos {
	return Pos{File: lx.file, Line: lx.line, Column: lx.col}
}

func (lx *Lexer) peek() rune {
	if lx.off >= len(lx.src) {
		return -1
	}
	r, _ := utf8.DecodeRuneInString(lx.src[lx.off:])
	return r
}

func (lx *Lexer) peek2() rune {
	if lx.off >= len(lx.src) {
		return -1
	}
	_, w := utf8.DecodeRuneInString(lx.src[lx.off:])
	if lx.off+w >= len(lx.src) {
		return -1
	}
	r2, _ := utf8.DecodeRuneInString(lx.src[lx.off+w:])
	return r2
}

func (lx *Lexer) next() rune {
	if lx.off >= len(lx.src) {
		return -1
	}
	r, w := utf8.DecodeRuneInString(lx.src[lx.off:])
	lx.off += w
	if r == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return r
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

func isDigit(r rune) bool { return r >= '0' && r <= '9' }

func isHexDigit(r rune) bool {
	return isDigit(r) || (r >= 'a' && r <= 'f') || (r >= 'A' && r <= 'F')
}

// skipSpaceAndComments advances past whitespace, comments and preprocessor
// lines, collecting directives.
func (lx *Lexer) skipSpaceAndComments() {
	for {
		r := lx.peek()
		switch {
		case r == -1:
			return
		case r == ' ' || r == '\t' || r == '\r' || r == '\n' || r == '\f' || r == '\v':
			lx.next()
		case r == '/' && lx.peek2() == '/':
			for lx.peek() != -1 && lx.peek() != '\n' {
				lx.next()
			}
		case r == '/' && lx.peek2() == '*':
			pos := lx.pos()
			lx.next()
			lx.next()
			closed := false
			for lx.peek() != -1 {
				if lx.peek() == '*' && lx.peek2() == '/' {
					lx.next()
					lx.next()
					closed = true
					break
				}
				lx.next()
			}
			if !closed {
				lx.errs.Add(pos, "unterminated block comment")
			}
		case r == '#' && lx.col == 1:
			lx.lexDirective()
		default:
			return
		}
	}
}

// lexDirective consumes a full preprocessor line starting at '#'.
func (lx *Lexer) lexDirective() {
	pos := lx.pos()
	lx.next() // '#'
	start := lx.off
	for lx.peek() != -1 && lx.peek() != '\n' {
		lx.next()
	}
	line := strings.TrimSpace(lx.src[start:lx.off])
	if line == "" {
		return
	}
	fields := splitDirective(line)
	if len(fields) == 0 {
		return
	}
	d := Directive{Pos: pos, Name: fields[0], Args: fields[1:]}
	switch d.Name {
	case "pragma", "include":
		lx.direct = append(lx.direct, d)
	default:
		// Other preprocessor lines (#if, #define, line markers) are
		// ignored: the front-end expects pre-processed input.
	}
}

// splitDirective tokenizes a directive line on whitespace, treating quoted
// and angle-bracketed segments as single fields with delimiters stripped.
func splitDirective(line string) []string {
	var out []string
	i := 0
	for i < len(line) {
		for i < len(line) && (line[i] == ' ' || line[i] == '\t') {
			i++
		}
		if i >= len(line) {
			break
		}
		switch line[i] {
		case '"':
			j := strings.IndexByte(line[i+1:], '"')
			if j < 0 {
				out = append(out, line[i+1:])
				return out
			}
			out = append(out, line[i+1:i+1+j])
			i += j + 2
		case '<':
			j := strings.IndexByte(line[i+1:], '>')
			if j < 0 {
				out = append(out, line[i+1:])
				return out
			}
			out = append(out, line[i+1:i+1+j])
			i += j + 2
		default:
			j := i
			for j < len(line) && line[j] != ' ' && line[j] != '\t' {
				j++
			}
			out = append(out, line[i:j])
			i = j
		}
	}
	return out
}

// Next returns the next token. At end of input it returns a TokEOF token;
// calling Next after EOF keeps returning EOF.
func (lx *Lexer) Next() Token {
	lx.skipSpaceAndComments()
	pos := lx.pos()
	r := lx.peek()
	switch {
	case r == -1:
		return Token{Kind: TokEOF, Pos: pos}
	case isIdentStart(r):
		return lx.lexIdent(pos)
	case isDigit(r):
		return lx.lexNumber(pos)
	case r == '.' && isDigit(lx.peek2()):
		return lx.lexNumber(pos)
	case r == '\'':
		return lx.lexChar(pos)
	case r == '"':
		return lx.lexString(pos)
	}
	lx.next()
	switch r {
	case ';':
		return Token{Kind: TokSemi, Text: ";", Pos: pos}
	case '{':
		return Token{Kind: TokLBrace, Text: "{", Pos: pos}
	case '}':
		return Token{Kind: TokRBrace, Text: "}", Pos: pos}
	case '(':
		return Token{Kind: TokLParen, Text: "(", Pos: pos}
	case ')':
		return Token{Kind: TokRParen, Text: ")", Pos: pos}
	case '[':
		return Token{Kind: TokLBracket, Text: "[", Pos: pos}
	case ']':
		return Token{Kind: TokRBracket, Text: "]", Pos: pos}
	case ',':
		return Token{Kind: TokComma, Text: ",", Pos: pos}
	case '=':
		return Token{Kind: TokEquals, Text: "=", Pos: pos}
	case '+':
		return Token{Kind: TokPlus, Text: "+", Pos: pos}
	case '-':
		return Token{Kind: TokMinus, Text: "-", Pos: pos}
	case '*':
		return Token{Kind: TokStar, Text: "*", Pos: pos}
	case '/':
		return Token{Kind: TokSlash, Text: "/", Pos: pos}
	case '%':
		return Token{Kind: TokPercent, Text: "%", Pos: pos}
	case '|':
		return Token{Kind: TokPipe, Text: "|", Pos: pos}
	case '^':
		return Token{Kind: TokCaret, Text: "^", Pos: pos}
	case '&':
		return Token{Kind: TokAmp, Text: "&", Pos: pos}
	case '~':
		return Token{Kind: TokTilde, Text: "~", Pos: pos}
	case ':':
		if lx.peek() == ':' {
			lx.next()
			return Token{Kind: TokScope, Text: "::", Pos: pos}
		}
		return Token{Kind: TokColon, Text: ":", Pos: pos}
	case '<':
		if lx.peek() == '<' {
			lx.next()
			return Token{Kind: TokShiftLeft, Text: "<<", Pos: pos}
		}
		return Token{Kind: TokLAngle, Text: "<", Pos: pos}
	case '>':
		if lx.peek() == '>' {
			lx.next()
			return Token{Kind: TokShiftRight, Text: ">>", Pos: pos}
		}
		return Token{Kind: TokRAngle, Text: ">", Pos: pos}
	}
	lx.errs.Add(pos, "unexpected character %q", r)
	return lx.Next()
}

func (lx *Lexer) lexIdent(pos Pos) Token {
	start := lx.off
	for isIdentPart(lx.peek()) {
		lx.next()
	}
	text := lx.src[start:lx.off]
	if kind, ok := keywords[text]; ok {
		return Token{Kind: kind, Text: text, Pos: pos}
	}
	return Token{Kind: TokIdent, Text: text, Pos: pos}
}

func (lx *Lexer) lexNumber(pos Pos) Token {
	start := lx.off
	isFloat := false
	if lx.peek() == '0' && (lx.peek2() == 'x' || lx.peek2() == 'X') {
		lx.next()
		lx.next()
		for isHexDigit(lx.peek()) {
			lx.next()
		}
		return Token{Kind: TokIntLit, Text: lx.src[start:lx.off], Pos: pos}
	}
	for isDigit(lx.peek()) {
		lx.next()
	}
	if lx.peek() == '.' {
		isFloat = true
		lx.next()
		for isDigit(lx.peek()) {
			lx.next()
		}
	}
	if r := lx.peek(); r == 'e' || r == 'E' {
		save := lx.off
		lx.next()
		if r := lx.peek(); r == '+' || r == '-' {
			lx.next()
		}
		if isDigit(lx.peek()) {
			isFloat = true
			for isDigit(lx.peek()) {
				lx.next()
			}
		} else {
			// Not an exponent after all; restore (cannot happen in
			// valid IDL, but keep the lexer total).
			lx.off = save
		}
	}
	if r := lx.peek(); r == 'd' || r == 'D' {
		// Fixed-point suffix; treat as float.
		isFloat = true
		lx.next()
	}
	kind := TokIntLit
	if isFloat {
		kind = TokFloatLit
	}
	return Token{Kind: kind, Text: lx.src[start:lx.off], Pos: pos}
}

func (lx *Lexer) lexChar(pos Pos) Token {
	lx.next() // opening quote
	var b strings.Builder
	for {
		r := lx.peek()
		if r == -1 || r == '\n' {
			lx.errs.Add(pos, "unterminated character literal")
			break
		}
		lx.next()
		if r == '\'' {
			break
		}
		if r == '\\' {
			b.WriteRune(lx.unescape(pos))
			continue
		}
		b.WriteRune(r)
	}
	text := b.String()
	if n := utf8.RuneCountInString(text); n != 1 {
		lx.errs.Add(pos, "character literal must contain exactly one character, got %d", n)
	}
	return Token{Kind: TokCharLit, Text: text, Pos: pos}
}

func (lx *Lexer) lexString(pos Pos) Token {
	lx.next() // opening quote
	var b strings.Builder
	for {
		r := lx.peek()
		if r == -1 || r == '\n' {
			lx.errs.Add(pos, "unterminated string literal")
			break
		}
		lx.next()
		if r == '"' {
			break
		}
		if r == '\\' {
			b.WriteRune(lx.unescape(pos))
			continue
		}
		b.WriteRune(r)
	}
	return Token{Kind: TokStringLit, Text: b.String(), Pos: pos}
}

// unescape interprets the character following a backslash.
func (lx *Lexer) unescape(pos Pos) rune {
	r := lx.next()
	switch r {
	case 'n':
		return '\n'
	case 't':
		return '\t'
	case 'r':
		return '\r'
	case 'v':
		return '\v'
	case 'f':
		return '\f'
	case 'b':
		return '\b'
	case 'a':
		return 7
	case '0':
		return 0
	case '\\', '\'', '"', '?':
		return r
	case 'x':
		var v rune
		for i := 0; i < 2 && isHexDigit(lx.peek()); i++ {
			d := lx.next()
			v = v*16 + hexVal(d)
		}
		return v
	case -1:
		lx.errs.Add(pos, "unterminated escape sequence")
		return 0
	default:
		lx.errs.Add(pos, "unknown escape sequence \\%c", r)
		return r
	}
}

func hexVal(r rune) rune {
	switch {
	case r >= '0' && r <= '9':
		return r - '0'
	case r >= 'a' && r <= 'f':
		return r - 'a' + 10
	default:
		return r - 'A' + 10
	}
}

// Tokenize runs the lexer to completion and returns all tokens (excluding
// the trailing EOF). It is a convenience for tests and tooling.
func Tokenize(file, src string) ([]Token, []Directive, error) {
	var errs ErrorList
	lx := NewLexer(file, src, &errs)
	var toks []Token
	for {
		t := lx.Next()
		if t.Kind == TokEOF {
			break
		}
		toks = append(toks, t)
	}
	return toks, lx.Directives(), errs.Err()
}
