package heidi

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestXBool(t *testing.T) {
	if XTrue.String() != "XTrue" || XFalse.String() != "XFalse" {
		t.Error("XBool spellings")
	}
	if !bool(XTrue) || bool(XFalse) {
		t.Error("XBool values")
	}
}

func TestHdListBasics(t *testing.T) {
	l := NewHdList[int](2)
	if l.Len() != 0 {
		t.Error("new list not empty")
	}
	l.Append(10)
	l.Append(20)
	l.Append(30)
	if l.Len() != 3 || l.At(1) != 20 {
		t.Errorf("len=%d at(1)=%d", l.Len(), l.At(1))
	}
	l.Set(1, 25)
	if l.At(1) != 25 {
		t.Error("Set")
	}
	if got := l.Items(); len(got) != 3 || got[2] != 30 {
		t.Errorf("Items = %v", got)
	}

	l2 := HdListOf("a", "b")
	if l2.Len() != 2 || l2.At(0) != "a" {
		t.Errorf("HdListOf: %v", l2.Items())
	}
}

func TestHdListIterator(t *testing.T) {
	l := HdListOf(1, 2, 3)
	it := l.Iterator()
	var got []int
	for it.Next() {
		got = append(got, it.Value())
	}
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Errorf("iterated %v", got)
	}
	if it.Next() {
		t.Error("Next after exhaustion")
	}
	it.Reset()
	if !it.Next() || it.Value() != 1 {
		t.Error("Reset")
	}

	empty := NewHdList[int](0).Iterator()
	if empty.Next() {
		t.Error("empty iterator Next")
	}
	defer func() {
		if recover() == nil {
			t.Error("Value before Next should panic")
		}
	}()
	NewHdList[int](0).Iterator().Value()
}

// TestHdListAppendProperty: appending n elements yields length n with
// contents in order.
func TestHdListAppendProperty(t *testing.T) {
	f := func(vals []int64) bool {
		l := NewHdList[int64](0)
		for _, v := range vals {
			l.Append(v)
		}
		if l.Len() != len(vals) {
			return false
		}
		for i, v := range vals {
			if l.At(i) != v {
				return false
			}
		}
		it := l.Iterator()
		for _, v := range vals {
			if !it.Next() || it.Value() != v {
				return false
			}
		}
		return !it.Next()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

type fakeSer struct{ name string }

func (f *fakeSer) HdTypeName() string       { return f.name }
func (f *fakeSer) HdMarshal(Writer) error   { return nil }
func (f *fakeSer) HdUnmarshal(Reader) error { return nil }

func TestTypeRegistry(t *testing.T) {
	name := "heidi_test.Fake"
	RegisterType(name, func() Serializable { return &fakeSer{name: name} })

	if !HasType(name) {
		t.Error("HasType after register")
	}
	obj, err := NewInstance(name)
	if err != nil {
		t.Fatal(err)
	}
	if obj.HdTypeName() != name {
		t.Error("factory product type name")
	}
	if _, err := NewInstance("heidi_test.Missing"); err == nil {
		t.Error("NewInstance of unknown type should fail")
	}
	found := false
	for _, n := range Types() {
		if n == name {
			found = true
		}
	}
	if !found {
		t.Errorf("Types() missing %q", name)
	}

	defer func() {
		if recover() == nil {
			t.Error("duplicate RegisterType should panic")
		}
	}()
	RegisterType(name, func() Serializable { return &fakeSer{} })
}

func TestIsSerializable(t *testing.T) {
	if _, ok := IsSerializable(&fakeSer{}); !ok {
		t.Error("fakeSer should be Serializable")
	}
	if _, ok := IsSerializable(42); ok {
		t.Error("int should not be Serializable")
	}
	if _, ok := IsSerializable(nil); ok {
		t.Error("nil should not be Serializable")
	}
}

func BenchmarkHdListAppend(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l := NewHdList[int](0)
		for j := 0; j < 100; j++ {
			l.Append(j)
		}
	}
}

func ExampleHdList() {
	l := HdListOf("start", "stop")
	it := l.Iterator()
	for it.Next() {
		fmt.Println(it.Value())
	}
	// Output:
	// start
	// stop
}
