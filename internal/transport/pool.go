package transport

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Pool is the HeidiRMI connection cache (§3.1): connections to an endpoint
// are checked out exclusively for the duration of one call and returned for
// reuse; only when no idle connection is available is a new one dialed.
// Set Disabled to ablate caching (benchmark C3).
//
// Beyond the paper's cache, the pool carries the fault-tolerance policy of
// the invocation layer: an optional per-endpoint circuit breaker consulted
// on checkout, idle-TTL and max-lifetime eviction so stale cached
// connections are not handed to callers, and an optional liveness check on
// checkout.
type Pool struct {
	// Dial opens a new connection to an endpoint; typically a
	// Transport's Dial.
	Dial func(addr string) (Conn, error)

	// MaxIdlePerHost bounds the number of idle connections cached per
	// endpoint; zero means DefaultMaxIdlePerHost. Excess returned
	// connections are closed.
	MaxIdlePerHost int

	// Disabled turns caching off: Get always dials and Put always
	// closes.
	Disabled bool

	// IdleTTL evicts idle connections that have sat unused for longer
	// than this; zero means idle connections never expire (the HeidiRMI
	// default, where cached connections may legitimately sit for hours).
	IdleTTL time.Duration

	// MaxLifetime closes connections older than this instead of
	// re-caching them (defense against servers that rotate or leak
	// per-connection state); zero means unlimited.
	MaxLifetime time.Duration

	// CheckHealth, when set, probes each cached connection at checkout;
	// a non-nil error discards that connection and falls through to the
	// next idle connection (or a fresh dial). Fresh dials are not
	// checked.
	CheckHealth func(Conn) error

	// ProbeIdle, with Probe set, bounds how long a cached connection may
	// sit idle before checkout runs the (potentially round-trip-priced)
	// Probe on it. Connections idle for less are handed out unprobed —
	// the common case, kept at zero extra cost. Zero disables probing.
	ProbeIdle time.Duration
	// Probe actively checks a long-idle cached connection at checkout,
	// typically PingProbe (keepalive.go): unlike CheckHealth (cheap, run
	// on every cached checkout) it may cost a network round-trip, so it
	// runs only on connections idle past ProbeIdle. A non-nil error
	// discards the connection and falls through to the next candidate.
	Probe func(Conn) error

	// Breaker, when set, gates checkouts per endpoint: Get fails fast
	// with ErrCircuitOpen while an endpoint's breaker is open, and
	// Get/Put outcomes feed the breaker's failure/success counts.
	Breaker *BreakerSet

	now func() time.Time // test clock; nil means time.Now

	mu     sync.Mutex
	idle   map[string][]idleConn
	closed bool

	// outstanding counts checked-out connections per endpoint — the
	// exclusive path's in-flight load, fed to balance.LeastInFlight via
	// InFlight.
	outstanding map[string]int

	// Stats counters (read with Stats).
	hits, misses, dials, expired, rejected int
	probes, probeEvicted                   int
}

// idleConn is one cached connection plus the time it was returned.
type idleConn struct {
	c     Conn
	since time.Time
}

// pooledConn tags a dialed connection with its creation time so
// MaxLifetime can be enforced when it is returned. It is only used when
// MaxLifetime is configured, so pools without a lifetime bound hand back
// the dialer's connection unchanged.
type pooledConn struct {
	Conn
	created time.Time
}

// DefaultMaxIdlePerHost is the per-endpoint idle cap when none is set.
const DefaultMaxIdlePerHost = 8

// ErrPoolClosed is returned by Get after Close; the ORB maps it onto its
// shutdown semantics.
var ErrPoolClosed = errors.New("transport: pool closed")

// PoolStats reports cache effectiveness and fault-policy activity.
type PoolStats struct {
	Hits, Misses, Dials int
	// Expired counts connections evicted by IdleTTL or MaxLifetime.
	Expired int
	// Rejected counts checkouts denied by an open circuit breaker.
	Rejected int
	// Probes counts idle connections actively probed at checkout
	// (ProbeIdle/Probe); ProbeEvicted the subset that flunked and were
	// discarded.
	Probes, ProbeEvicted int
	// Breakers snapshots the per-endpoint breaker states (nil when no
	// breaker is configured or no endpoint has ever failed).
	Breakers map[string]BreakerState
}

// NewPool builds a pool dialing with the given transport.
func NewPool(t Transport) *Pool {
	return &Pool{Dial: t.Dial}
}

func (p *Pool) timeNow() time.Time {
	if p.now != nil {
		return p.now()
	}
	return time.Now()
}

// Get checks out a connection to addr, reusing an idle cached connection
// when one exists.
func (p *Pool) Get(addr string) (Conn, error) {
	c, _, err := p.Checkout(addr)
	return c, err
}

// Checkout is Get plus a report of whether the connection was reused from
// the cache — the signal the retry layer needs to treat an EOF on first
// read as a stale cached connection rather than an ambiguous failure.
func (p *Pool) Checkout(addr string) (Conn, bool, error) {
	if p.Dial == nil {
		return nil, false, fmt.Errorf("transport: pool has no dialer")
	}
	if err := p.Breaker.Allow(addr); err != nil {
		p.mu.Lock()
		p.rejected++
		p.mu.Unlock()
		return nil, false, err
	}
	if !p.Disabled {
		for {
			c, err, done := p.checkoutIdle(addr)
			if done {
				if err != nil {
					return nil, false, err
				}
				if c == nil {
					break // cache miss: dial below
				}
				p.track(addr, 1)
				return c, true, nil
			}
		}
	}
	p.mu.Lock()
	p.dials++
	p.mu.Unlock()
	c, err := p.Dial(addr)
	if err != nil {
		p.Breaker.Failure(addr)
		return nil, false, err
	}
	if p.MaxLifetime > 0 {
		c = &pooledConn{Conn: c, created: p.timeNow()}
	}
	p.track(addr, 1)
	return c, false, nil
}

// track adjusts addr's checked-out connection count.
func (p *Pool) track(addr string, delta int) {
	p.mu.Lock()
	if p.outstanding == nil {
		p.outstanding = make(map[string]int)
	}
	n := p.outstanding[addr] + delta
	if n <= 0 {
		delete(p.outstanding, addr)
	} else {
		p.outstanding[addr] = n
	}
	p.mu.Unlock()
}

// InFlight reports how many connections to addr are currently checked out —
// on the exclusive path, one per in-flight call. It is the selection hook
// replica balancing reads (balance.Endpoint.InFlight).
func (p *Pool) InFlight(addr string) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.outstanding[addr]
}

// checkoutIdle attempts one cached-connection checkout. done=false means a
// candidate failed its health check and the caller should try again;
// done=true with a nil Conn and nil error means the cache is empty (miss).
func (p *Pool) checkoutIdle(addr string) (Conn, error, bool) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrPoolClosed, true
	}
	now := p.timeNow()
	list := p.idle[addr]
	// Evict expired idle connections wholesale: the list is short
	// (MaxIdlePerHost) and eviction must not depend on checkout order.
	var evict []Conn
	if p.IdleTTL > 0 || p.MaxLifetime > 0 {
		live := list[:0]
		for _, ic := range list {
			if p.expiredLocked(ic, now) {
				evict = append(evict, ic.c)
				p.expired++
				continue
			}
			live = append(live, ic)
		}
		list = live
	}
	var c Conn
	var idleFor time.Duration
	if n := len(list); n > 0 {
		c = list[n-1].c
		idleFor = now.Sub(list[n-1].since)
		list = list[:n-1]
		p.hits++
	} else {
		p.misses++
	}
	if p.idle != nil {
		p.idle[addr] = list
	}
	p.mu.Unlock()
	for _, ec := range evict {
		ec.Close()
	}
	if c == nil {
		return nil, nil, true
	}
	if p.CheckHealth != nil {
		if err := p.CheckHealth(c); err != nil {
			c.Close()
			// The hit was provisional; try the next candidate.
			p.mu.Lock()
			p.hits--
			p.mu.Unlock()
			return nil, nil, false
		}
	}
	if p.Probe != nil && p.ProbeIdle > 0 && idleFor >= p.ProbeIdle {
		// Long-idle connection: anything may have happened to it while it
		// sat (peer restart, NAT flow expiry, silent path failure), so pay
		// one active round-trip before betting a call on it. The probe
		// runs outside the pool lock — it blocks on the network.
		p.mu.Lock()
		p.probes++
		p.mu.Unlock()
		if err := p.Probe(c); err != nil {
			c.Close()
			p.mu.Lock()
			p.hits--
			p.probeEvicted++
			p.mu.Unlock()
			return nil, nil, false
		}
	}
	return c, nil, true
}

// expiredLocked reports whether an idle connection is past its idle TTL or
// total lifetime.
func (p *Pool) expiredLocked(ic idleConn, now time.Time) bool {
	if p.IdleTTL > 0 && now.Sub(ic.since) >= p.IdleTTL {
		return true
	}
	if p.MaxLifetime > 0 {
		if pc, ok := ic.c.(*pooledConn); ok && now.Sub(pc.created) >= p.MaxLifetime {
			return true
		}
	}
	return false
}

// Put returns a healthy connection to the cache. Pass healthy=false after
// an I/O error so the connection is discarded rather than reused. Outcomes
// feed the circuit breaker when one is configured.
func (p *Pool) Put(addr string, c Conn, healthy bool) {
	if c == nil {
		return
	}
	p.track(addr, -1)
	if healthy {
		p.Breaker.Success(addr)
	} else {
		p.Breaker.Failure(addr)
	}
	if p.Disabled || !healthy {
		c.Close()
		return
	}
	now := p.timeNow()
	if p.MaxLifetime > 0 {
		if pc, ok := c.(*pooledConn); ok && now.Sub(pc.created) >= p.MaxLifetime {
			p.mu.Lock()
			p.expired++
			p.mu.Unlock()
			c.Close()
			return
		}
	}
	max := p.MaxIdlePerHost
	if max <= 0 {
		max = DefaultMaxIdlePerHost
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed || len(p.idle[addr]) >= max {
		c.Close()
		return
	}
	if p.idle == nil {
		p.idle = make(map[string][]idleConn)
	}
	p.idle[addr] = append(p.idle[addr], idleConn{c: c, since: now})
}

// Stats returns cache counters and breaker states.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	st := PoolStats{
		Hits: p.hits, Misses: p.misses, Dials: p.dials,
		Expired: p.expired, Rejected: p.rejected,
		Probes: p.probes, ProbeEvicted: p.probeEvicted,
	}
	p.mu.Unlock()
	if p.Breaker.enabled() {
		st.Breakers = p.Breaker.States()
	}
	return st
}

// Close closes every idle connection and marks the pool closed.
func (p *Pool) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.closed = true
	for _, list := range p.idle {
		for _, ic := range list {
			ic.c.Close()
		}
	}
	p.idle = nil
	return nil
}
