package naming

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/demo"
	"repro/internal/gen/media"
	gen "repro/internal/gen/naming"
	"repro/internal/orb"
	"repro/internal/wire"
)

// startNaming serves a naming context and returns a remote client for it.
func startNaming(t *testing.T, proto wire.Protocol) (gen.HdContext, *Context) {
	t.Helper()
	server := orb.New(orb.Options{Protocol: proto})
	if err := server.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { server.Shutdown() })
	ref, impl, err := Serve(server)
	if err != nil {
		t.Fatal(err)
	}
	client := orb.New(orb.Options{Protocol: proto})
	t.Cleanup(func() { client.Shutdown() })
	ctx, err := Connect(client, ref)
	if err != nil {
		t.Fatal(err)
	}
	return ctx, impl
}

func mustRef(t *testing.T, s string) orb.ObjectRef {
	t.Helper()
	ref, err := orb.ParseRef(s)
	if err != nil {
		t.Fatal(err)
	}
	return ref
}

func TestBindResolveUnbind(t *testing.T) {
	for _, proto := range []wire.Protocol{wire.Text, wire.CDR} {
		t.Run(proto.Name(), func(t *testing.T) {
			ctx, _ := startNaming(t, proto)
			ref := mustRef(t, "@tcp:h:1#42#IDL:X:1.0")

			if err := ctx.Bind("player", ref); err != nil {
				t.Fatal(err)
			}
			got, err := ctx.Resolve("player")
			if err != nil {
				t.Fatal(err)
			}
			if got != ref {
				t.Errorf("Resolve = %v, want %v", got, ref)
			}

			// Duplicate bind raises AlreadyBound.
			err = ctx.Bind("player", ref)
			var re *orb.RemoteError
			if !errors.As(err, &re) || re.Status != wire.StatusUserException ||
				!strings.Contains(re.Msg, "AlreadyBound") {
				t.Errorf("duplicate bind = %v", err)
			}

			// Rebind overwrites.
			ref2 := mustRef(t, "@tcp:h:2#43#IDL:Y:1.0")
			if err := ctx.Rebind("player", ref2); err != nil {
				t.Fatal(err)
			}
			if got, _ := ctx.Resolve("player"); got != ref2 {
				t.Error("rebind did not overwrite")
			}

			if err := ctx.Unbind("player"); err != nil {
				t.Fatal(err)
			}
			_, err = ctx.Resolve("player")
			if !errors.As(err, &re) || !strings.Contains(re.Msg, "NotFound") {
				t.Errorf("resolve after unbind = %v", err)
			}
			if err := ctx.Unbind("player"); err == nil {
				t.Error("unbind of unbound name should fail")
			}
		})
	}
}

func TestListAndSize(t *testing.T) {
	ctx, _ := startNaming(t, wire.Text)
	for _, n := range []string{"charlie", "alpha", "bravo"} {
		if err := ctx.Bind(n, mustRef(t, "@tcp:h:1#1#IDL:T:1.0")); err != nil {
			t.Fatal(err)
		}
	}
	names, err := ctx.List()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(names, ",") != "alpha,bravo,charlie" {
		t.Errorf("List = %v", names)
	}
	if n, err := ctx.GetSize(); err != nil || n != 3 {
		t.Errorf("GetSize = %d, %v", n, err)
	}
}

func TestConcurrentClients(t *testing.T) {
	ctx, impl := startNaming(t, wire.CDR)
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				name := fmt.Sprintf("svc-%d-%d", g, i)
				if err := ctx.Bind(name, mustRef(t, "@tcp:h:1#9#IDL:T:1.0")); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if n, _ := impl.GetSize(); n != 60 {
		t.Errorf("size = %d, want 60", n)
	}
}

// TestDiscoveryFlow is the deployment story: a media server binds its
// session into the name service; a client that knows only the naming
// reference resolves the name, then the typed object, and calls it.
func TestDiscoveryFlow(t *testing.T) {
	// One server process hosts both the naming context and the session.
	server, sessionRef, _, err := demo.Serve(orb.Options{Protocol: wire.Text}, "discovered")
	if err != nil {
		t.Fatal(err)
	}
	defer server.Shutdown()
	namingRef, _, err := Serve(server)
	if err != nil {
		t.Fatal(err)
	}

	// The server binds its own session under a well-known name,
	// remotely, through the same public interface clients use.
	bootstrapClient := orb.New(orb.Options{Protocol: wire.Text})
	defer bootstrapClient.Shutdown()
	ctx, err := Connect(bootstrapClient, namingRef)
	if err != nil {
		t.Fatal(err)
	}
	if err := ctx.Bind("media/session-main", sessionRef); err != nil {
		t.Fatal(err)
	}

	// A fresh client knows only namingRef.
	client := demo.Connect(orb.Options{Protocol: wire.Text})
	defer client.Shutdown()
	ctx2, err := Connect(client, namingRef)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := ctx2.Resolve("media/session-main")
	if err != nil {
		t.Fatal(err)
	}
	obj, err := client.Resolve(ref)
	if err != nil {
		t.Fatal(err)
	}
	session := obj.(media.HdSession)
	if name, err := session.GetName(); err != nil || name != "discovered" {
		t.Errorf("GetName via discovery = %q, %v", name, err)
	}
}

// TestDirectoryRebind: the Directory remembers which name produced which
// reference and re-resolves it on demand — the naming-service half of
// drain-aware rebinding.
func TestDirectoryRebind(t *testing.T) {
	ns := NewContext()
	dir := NewDirectory(ns)
	ref1 := mustRef(t, "@tcp:a:1#1#IDL:X:1.0")
	ref2 := mustRef(t, "@tcp:b:2#1#IDL:X:1.0")
	ref3 := mustRef(t, "@tcp:c:3#1#IDL:X:1.0")
	if err := ns.Bind("svc", ref1); err != nil {
		t.Fatal(err)
	}

	if got, err := dir.Resolve("svc"); err != nil || got != ref1 {
		t.Fatalf("Resolve = %v, %v, want %v", got, err, ref1)
	}
	// A reference the Directory never resolved passes through untouched.
	other := mustRef(t, "@tcp:z:9#9#IDL:Y:1.0")
	if got, err := dir.Rebind(other); err != nil || got != other {
		t.Fatalf("Rebind(unknown) = %v, %v, want the reference unchanged", got, err)
	}

	// The service relocates; rebinding the old reference finds the new one.
	if err := ns.Rebind("svc", ref2); err != nil {
		t.Fatal(err)
	}
	if got, err := dir.Rebind(ref1); err != nil || got != ref2 {
		t.Fatalf("Rebind after relocation = %v, %v, want %v", got, err, ref2)
	}
	// And the new answer is recorded, so a second relocation chains.
	if err := ns.Rebind("svc", ref3); err != nil {
		t.Fatal(err)
	}
	if got, err := dir.Rebind(ref2); err != nil || got != ref3 {
		t.Fatalf("chained Rebind = %v, %v, want %v", got, err, ref3)
	}

	// A failed re-resolution keeps the old reference and reports the error.
	if err := ns.Unbind("svc"); err != nil {
		t.Fatal(err)
	}
	got, err := dir.Rebind(ref3)
	if err == nil {
		t.Error("Rebind after unbind reported no error")
	}
	if got != ref3 {
		t.Errorf("Rebind after unbind = %v, want the old reference kept", got)
	}
}

// TestReplicaBindResolveSet exercises the replica operations over the wire
// through the generated bindings, on both protocols.
func TestReplicaBindResolveSet(t *testing.T) {
	for _, proto := range []wire.Protocol{wire.Text, wire.CDR} {
		t.Run(proto.Name(), func(t *testing.T) {
			ctx, _ := startNaming(t, proto)
			r1 := mustRef(t, "@tcp:a:1#1#IDL:X:1.0")
			r2 := mustRef(t, "@tcp:b:1#2#IDL:X:1.0")
			r3 := mustRef(t, "@tcp:c:1#3#IDL:X:1.0")

			for _, r := range []orb.ObjectRef{r1, r2, r3, r2 /* idempotent re-announce */} {
				if err := ctx.BindReplica("svc", r); err != nil {
					t.Fatal(err)
				}
			}
			set, err := ctx.ResolveSet("svc")
			if err != nil {
				t.Fatal(err)
			}
			if len(set) != 3 || set[0] != r1 || set[1] != r2 || set[2] != r3 {
				t.Errorf("ResolveSet = %v", set)
			}
			// The compatibility view for replica-unaware clients.
			if got, err := ctx.Resolve("svc"); err != nil || got != r1 {
				t.Errorf("Resolve = %v, %v, want first member", got, err)
			}

			if err := ctx.UnbindReplica("svc", r2); err != nil {
				t.Fatal(err)
			}
			if set, _ = ctx.ResolveSet("svc"); len(set) != 2 {
				t.Errorf("set after UnbindReplica = %v", set)
			}
			var re *orb.RemoteError
			if err := ctx.UnbindReplica("svc", r2); !errors.As(err, &re) || !strings.Contains(re.Msg, "NotFound") {
				t.Errorf("removing an absent member = %v", err)
			}
			if err := ctx.UnbindReplica("ghost", r1); !errors.As(err, &re) || !strings.Contains(re.Msg, "NotFound") {
				t.Errorf("removing from an unbound name = %v", err)
			}
			// Removing the last member unbinds the name entirely.
			ctx.UnbindReplica("svc", r1)
			ctx.UnbindReplica("svc", r3)
			if _, err := ctx.ResolveSet("svc"); !errors.As(err, &re) || !strings.Contains(re.Msg, "NotFound") {
				t.Errorf("ResolveSet after emptying = %v", err)
			}
			if _, err := ctx.Resolve("svc"); !errors.As(err, &re) || !strings.Contains(re.Msg, "NotFound") {
				t.Errorf("Resolve after emptying = %v", err)
			}
		})
	}
}

// TestDirectoryNoGrowth: re-resolution drops the superseded reference's
// record, so a service that relocates N times leaves one record, not N — the
// unbounded-growth regression fix.
func TestDirectoryNoGrowth(t *testing.T) {
	ns := NewContext()
	dir := NewDirectory(ns)
	ns.Bind("svc", mustRef(t, "@tcp:h0:1#1#IDL:X:1.0"))
	cur, err := dir.Resolve("svc")
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 50; i++ {
		next := mustRef(t, fmt.Sprintf("@tcp:h%d:1#1#IDL:X:1.0", i))
		ns.Rebind("svc", next)
		got, err := dir.Rebind(cur)
		if err != nil || got != next {
			t.Fatalf("hop %d: Rebind = %v, %v", i, got, err)
		}
		if n := dir.tracked(); n != 1 {
			t.Fatalf("hop %d: directory tracks %d records, want 1 (unbounded growth)", i, n)
		}
		cur = next
	}
	// A re-resolution that returns the same reference must keep the record.
	if _, err := dir.Rebind(cur); err != nil {
		t.Fatal(err)
	}
	if n := dir.tracked(); n != 1 {
		t.Errorf("same-answer rebind left %d records, want 1", n)
	}
	// A failed re-resolution keeps the record too, so later calls can retry.
	ns.Unbind("svc")
	if _, err := dir.Rebind(cur); err == nil {
		t.Error("rebind of an unbound name reported no error")
	}
	if n := dir.tracked(); n != 1 {
		t.Errorf("failed rebind left %d records, want 1", n)
	}
}

// slowNS wraps a Context, counting Resolve calls and holding each one until
// released — the probe for duplicate concurrent re-resolutions.
type slowNS struct {
	*Context
	resolves atomic.Int32
	gate     chan struct{}
}

func (s *slowNS) Resolve(name string) (orb.ObjectRef, error) {
	s.resolves.Add(1)
	<-s.gate
	return s.Context.Resolve(name)
}

// TestDirectorySingleFlight: concurrent rebinds of one stale reference share
// a single name-service lookup instead of issuing one each.
func TestDirectorySingleFlight(t *testing.T) {
	ns := &slowNS{Context: NewContext(), gate: make(chan struct{})}
	dir := NewDirectory(ns)
	old := mustRef(t, "@tcp:old:1#1#IDL:X:1.0")
	next := mustRef(t, "@tcp:new:1#1#IDL:X:1.0")
	ns.Context.Bind("svc", old)
	close(ns.gate)
	if _, err := dir.Resolve("svc"); err != nil {
		t.Fatal(err)
	}
	ns.Context.Rebind("svc", next)
	ns.resolves.Store(0)
	ns.gate = make(chan struct{})

	const callers = 16
	var wg sync.WaitGroup
	results := make([]orb.ObjectRef, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got, err := dir.Rebind(old)
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
			}
			results[i] = got
		}(i)
	}
	// Let every caller reach the Directory before the lookup completes.
	deadline := time.Now().Add(5 * time.Second)
	for ns.resolves.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no caller reached the name service")
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(10 * time.Millisecond) // latecomers must park on the flight
	close(ns.gate)
	wg.Wait()

	if n := ns.resolves.Load(); n != 1 {
		t.Errorf("%d callers issued %d name-service lookups, want 1 (single-flight)", callers, n)
	}
	for i, got := range results {
		if got != next {
			t.Errorf("caller %d got %v, want %v", i, got, next)
		}
	}
}

// TestReplicaNamingEndToEnd is the full bootstrap story: servers announce
// themselves with BindReplica, a client pulls the set with
// Directory.ResolveSet, registers it, and its calls spread over the members.
func TestReplicaNamingEndToEnd(t *testing.T) {
	mk := func() orb.Options { return orb.Options{Protocol: wire.Text} }
	// Two replica servers, each exporting its own naming Context servant as
	// the replicated payload service.
	var (
		servers []*orb.ORB
		refs    []orb.ObjectRef
	)
	for i := 0; i < 2; i++ {
		srv := orb.New(mk())
		if err := srv.Start(); err != nil {
			t.Fatal(err)
		}
		defer srv.Shutdown()
		ref, _, err := Serve(srv)
		if err != nil {
			t.Fatal(err)
		}
		servers = append(servers, srv)
		refs = append(refs, ref)
	}
	// The registry: each server binds itself under one name.
	registry := NewContext()
	for _, ref := range refs {
		if err := registry.BindReplica("svc", ref); err != nil {
			t.Fatal(err)
		}
	}

	client := orb.New(mk())
	defer client.Shutdown()
	dir := NewDirectory(registry)
	set, err := dir.ResolveSet("svc")
	if err != nil {
		t.Fatal(err)
	}
	primary, err := client.RegisterReplicaSet(set)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := Connect(client, primary)
	if err != nil {
		t.Fatal(err)
	}
	const calls = 10
	for i := 0; i < calls; i++ {
		if _, err := svc.GetSize(); err != nil {
			t.Fatal(err)
		}
	}
	for i, srv := range servers {
		if served := srv.Stats().RequestsServed; served != calls/2 {
			t.Errorf("replica %d served %d requests, want %d", i, served, calls/2)
		}
	}
}

// TestDirectoryRebindEndToEnd wires a Directory into a client ORB and drains
// the server behind it: the standby bound under the same name takes over.
func TestDirectoryRebindEndToEnd(t *testing.T) {
	mk := func() orb.Options {
		return orb.Options{Protocol: wire.Text, DrainTimeout: time.Second}
	}
	srv1, srv2 := orb.New(mk()), orb.New(mk())
	for _, s := range []*orb.ORB{srv1, srv2} {
		if err := s.Start(); err != nil {
			t.Fatal(err)
		}
	}
	defer srv2.Shutdown()
	impl1, impl2 := NewContext(), NewContext()
	ref1, err := srv1.Export(impl1, gen.NewHdContextTable(impl1))
	if err != nil {
		t.Fatal(err)
	}
	ref2, err := srv2.Export(impl2, gen.NewHdContextTable(impl2))
	if err != nil {
		t.Fatal(err)
	}
	impl1.Bind("payload", mustRef(t, "@tcp:p:1#1#IDL:P:1.0"))
	impl2.Bind("payload", mustRef(t, "@tcp:p:1#1#IDL:P:1.0"))

	// The registry knows the naming service itself under a name; the
	// Directory resolves through a local registry context.
	registry := NewContext()
	registry.Bind("naming", ref1)
	dir := NewDirectory(registry)

	client := orb.New(orb.Options{Protocol: wire.Text, Multiplex: true, Rebind: dir.Rebind})
	defer client.Shutdown()
	nsRef, err := dir.Resolve("naming")
	if err != nil {
		t.Fatal(err)
	}
	ns, err := Connect(client, nsRef)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ns.Resolve("payload"); err != nil {
		t.Fatalf("resolve before drain: %v", err)
	}

	// The naming service relocates: registry repointed, old server drained.
	registry.Rebind("naming", ref2)
	if err := srv1.Shutdown(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for client.ORBStats().GoAwaysSeen == 0 {
		if time.Now().After(deadline) {
			t.Fatal("client never saw the GOAWAY")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := ns.Resolve("payload"); err != nil {
		t.Fatalf("resolve after drain: %v", err)
	}
	if served := srv2.Stats().RequestsServed; served == 0 {
		t.Error("standby naming server served nothing; Directory rebind failed")
	}
}
