package idl

import (
	"strings"
	"testing"
)

// Conformance-style tests over grammar corners not covered by the main
// parser tests.

func TestAttributeMultipleDeclarators(t *testing.T) {
	spec := MustParse("a.idl", `interface A {
  attribute long x, y, z;
  readonly attribute string name, title;
};`)
	a, _ := spec.LookupInterface("A")
	if len(a.Attrs) != 5 {
		t.Fatalf("attrs = %d, want 5", len(a.Attrs))
	}
	names := map[string]bool{}
	for _, at := range a.Attrs {
		names[at.DeclName()] = true
		if at.DeclName() == "name" && !at.Readonly {
			t.Error("name should be readonly")
		}
		if at.DeclName() == "y" && at.Readonly {
			t.Error("y should be writable")
		}
	}
	for _, w := range []string{"x", "y", "z", "name", "title"} {
		if !names[w] {
			t.Errorf("missing attribute %q", w)
		}
	}
}

func TestTypedefMultipleDeclarators(t *testing.T) {
	spec := MustParse("t.idl", "typedef long A, B, C[4];")
	var names []string
	var cDims []uint64
	spec.Walk(func(d Decl) bool {
		if td, ok := d.(*TypedefDecl); ok {
			names = append(names, td.DeclName())
			if td.DeclName() == "C" {
				cDims = td.Aliased.Dims
			}
		}
		return true
	})
	if strings.Join(names, ",") != "A,B,C" {
		t.Errorf("typedefs = %v", names)
	}
	if len(cDims) != 1 || cDims[0] != 4 {
		t.Errorf("C dims = %v, want [4]", cDims)
	}
}

func TestDeeplyNestedModules(t *testing.T) {
	spec := MustParse("n.idl", `
module A { module B { module C { module D {
  interface Deep { void m(); };
}; }; }; };`)
	deep, err := spec.LookupInterface("A::B::C::D::Deep")
	if err != nil {
		t.Fatal(err)
	}
	if deep.RepoID() != "IDL:A/B/C/D/Deep:1.0" {
		t.Errorf("RepoID = %q", deep.RepoID())
	}
}

func TestAbsoluteScopedNames(t *testing.T) {
	spec := MustParse("abs.idl", `
const long N = 3;
module M {
  const long N = 5;
  interface I {
    void f(in long a = N);    // nearest: M::N = 5
    void g(in long a = ::N);  // absolute: global N = 3
  };
};`)
	i, _ := spec.LookupInterface("M::I")
	if d := i.Ops[0].Params[0].Default; d.Int != 5 {
		t.Errorf("f default = %v, want 5 (lexical nearest)", d)
	}
	if d := i.Ops[1].Params[0].Default; d.Int != 3 {
		t.Errorf("g default = %v, want 3 (absolute ::N)", d)
	}
}

func TestBooleanAndCharDiscriminatedUnions(t *testing.T) {
	spec := MustParse("u.idl", `
union B switch (boolean) {
  case TRUE: long yes;
  case FALSE: string no;
};
union C switch (char) {
  case 'a': long alpha;
  default: string other;
};`)
	var b, c *UnionDecl
	spec.Walk(func(d Decl) bool {
		if u, ok := d.(*UnionDecl); ok {
			if u.DeclName() == "B" {
				b = u
			} else {
				c = u
			}
		}
		return true
	})
	if b.Cases[0].Labels[0].Kind != ConstBool || !b.Cases[0].Labels[0].Bool {
		t.Errorf("B case 0 label = %v", b.Cases[0].Labels[0])
	}
	if c.Cases[0].Labels[0].Kind != ConstChar || c.Cases[0].Labels[0].Str != "a" {
		t.Errorf("C case 0 label = %v", c.Cases[0].Labels[0])
	}
	if !c.Cases[1].IsDefault {
		t.Error("C second case should be default")
	}
}

func TestOperationShadowsNothingAcrossInterfaces(t *testing.T) {
	// Same method name in sibling interfaces is fine.
	spec := MustParse("s.idl", `
interface A { void m(); };
interface B { void m(); };`)
	if n := len(spec.Interfaces()); n != 2 {
		t.Fatalf("interfaces = %d", n)
	}
}

func TestConstStringConcatAndEscapes(t *testing.T) {
	spec := MustParse("c.idl", `const string S = "a\n" "b\t" "c";`)
	cd := spec.Decls[0].(*ConstDecl)
	if cd.Value.Str != "a\nb\tc" {
		t.Errorf("S = %q", cd.Value.Str)
	}
}

func TestNegativeAndHexConstants(t *testing.T) {
	spec := MustParse("c.idl", `
const long A = -42;
const long B = 0x7FFF;
const long C = -0x10;
const double D = -2.5e2;
`)
	want := map[string]int64{"A": -42, "B": 0x7FFF, "C": -16}
	spec.Walk(func(d Decl) bool {
		if cd, ok := d.(*ConstDecl); ok {
			if w, ok := want[cd.DeclName()]; ok && cd.Value.Int != w {
				t.Errorf("%s = %d, want %d", cd.DeclName(), cd.Value.Int, w)
			}
			if cd.DeclName() == "D" && cd.Value.Flt != -250 {
				t.Errorf("D = %v", cd.Value.Flt)
			}
		}
		return true
	})
}

func TestEnumMembersInjectedIntoScope(t *testing.T) {
	// Enum members live in the enclosing scope, so a sibling const can
	// reference them unqualified, and a clash is a redefinition.
	spec := MustParse("e.idl", `
module M {
  enum E { One, Two };
  const E X = Two;
};`)
	var x *ConstDecl
	spec.Walk(func(d Decl) bool {
		if cd, ok := d.(*ConstDecl); ok {
			x = cd
		}
		return true
	})
	if x.Value.Name != "Two" {
		t.Errorf("X = %v", x.Value)
	}

	if _, err := Parse("clash.idl", `
module M {
  enum E { One };
  interface One {};
};`); err == nil || !strings.Contains(err.Error(), "redefinition") {
		t.Errorf("enum member clash: %v", err)
	}
}

func TestOnewayWithParamsAndContextClause(t *testing.T) {
	spec := MustParse("o.idl", `interface I {
  oneway void notify(in string topic, in long level);
  void lookup(in string name) context("user", "host");
};`)
	i, _ := spec.LookupInterface("I")
	if !i.Ops[0].Oneway || len(i.Ops[0].Params) != 2 {
		t.Error("oneway with params")
	}
	if len(i.Ops[1].Context) != 2 || i.Ops[1].Context[0] != "user" {
		t.Errorf("context = %v", i.Ops[1].Context)
	}
}

func TestInterfaceConstantsVisibleToDerived(t *testing.T) {
	spec := MustParse("k.idl", `
interface Base { const long LIMIT = 9; };
interface Derived : Base {
  void f(in long n = LIMIT);
};`)
	d, _ := spec.LookupInterface("Derived")
	if v := d.Ops[0].Params[0].Default; v == nil || v.Int != 9 {
		t.Errorf("inherited const default = %v", v)
	}
}

func TestBoundedSequenceOfBoundedString(t *testing.T) {
	spec := MustParse("b.idl", "typedef sequence<string<8>, 4> Names;")
	td := spec.Decls[0].(*TypedefDecl)
	seq := td.Aliased
	if seq.Kind != KindSequence || seq.Bound != 4 {
		t.Fatalf("seq = %s", seq.Name())
	}
	if seq.Elem.Kind != KindString || seq.Elem.Bound != 8 {
		t.Errorf("elem = %s", seq.Elem.Name())
	}
	if seq.Name() != "sequence<string<8>,4>" {
		t.Errorf("Name = %q", seq.Name())
	}
}
