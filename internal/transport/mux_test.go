package transport

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/wire"
)

// muxEchoServer accepts connections and answers every request from a
// per-request goroutine, so replies can overtake each other on the shared
// connection — exactly the reordering the demux reader must tolerate.
func muxEchoServer(t *testing.T, tr Transport) (addr string, stop func()) {
	t.Helper()
	l, err := tr.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func(c Conn) {
				defer wg.Done()
				defer c.Close()
				var reqWG sync.WaitGroup
				defer reqWG.Wait()
				for {
					m, err := c.Recv()
					if err != nil {
						return
					}
					if m.Type != wire.MsgRequest {
						continue
					}
					reqWG.Add(1)
					go func(m *wire.Message) {
						defer reqWG.Done()
						c.Send(&wire.Message{
							Type:      wire.MsgReply,
							RequestID: m.RequestID,
							Status:    wire.StatusOK,
							Body:      m.Body,
						})
					}(m)
				}
			}(c)
		}
	}()
	return l.Addr(), func() { l.Close(); wg.Wait() }
}

func muxReq(id uint32) *wire.Message {
	return &wire.Message{
		Type:      wire.MsgRequest,
		RequestID: id,
		TargetRef: "@x#1#IDL:T:1.0",
		Method:    "echo",
		Body:      []byte(fmt.Sprintf("%d", id)),
	}
}

// TestMuxConcurrentCalls drives 8 goroutines x 125 calls through ONE shared
// connection and checks every caller gets its own reply back (run under
// -race, this is the satellite's required interleaving test).
func TestMuxConcurrentCalls(t *testing.T) {
	for name, proto := range map[string]wire.Protocol{"text": wire.Text, "cdr": wire.CDR} {
		t.Run(name, func(t *testing.T) {
			tr := NewInproc(proto)
			addr, stop := muxEchoServer(t, tr)
			c, err := tr.Dial(addr)
			if err != nil {
				t.Fatal(err)
			}
			m := NewMuxConn(c)

			const callers, perCaller = 8, 125
			var nextID uint32
			errs := make(chan error, callers)
			for g := 0; g < callers; g++ {
				go func() {
					for i := 0; i < perCaller; i++ {
						id := atomic.AddUint32(&nextID, 1)
						p, err := m.Invoke(muxReq(id))
						if err != nil {
							errs <- err
							return
						}
						r, err := p.Wait(nil)
						if err != nil {
							errs <- err
							return
						}
						if r.RequestID != id || string(r.Body) != fmt.Sprintf("%d", id) {
							errs <- fmt.Errorf("call %d got reply %d body %q", id, r.RequestID, r.Body)
							return
						}
					}
					errs <- nil
				}()
			}
			for g := 0; g < callers; g++ {
				if err := <-errs; err != nil {
					t.Fatal(err)
				}
			}
			if n := m.InFlight(); n != 0 {
				t.Errorf("InFlight() = %d after all calls completed", n)
			}
			m.Close()
			stop()
		})
	}
}

// TestMuxConnDeathFailsInFlight kills the shared connection while calls are
// outstanding: every in-flight call must fail (the inherently ambiguous
// outcome), and the MuxConn must report itself dead so the pool redials.
func TestMuxConnDeathFailsInFlight(t *testing.T) {
	tr := NewInproc(wire.CDR)
	l, err := tr.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	const n = 8
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		for i := 0; i < n; i++ {
			if _, err := c.Recv(); err != nil {
				return
			}
		}
		c.Close() // all n requests received, none answered
	}()

	c, err := tr.Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	m := NewMuxConn(c)
	pends := make([]*PendingReply, n)
	for i := range pends {
		p, err := m.Invoke(muxReq(uint32(i + 1)))
		if err != nil {
			t.Fatal(err)
		}
		pends[i] = p
	}
	for i, p := range pends {
		if _, err := p.Wait(nil); err == nil {
			t.Errorf("call %d survived connection death", i+1)
		}
	}
	if !m.Dead() {
		t.Error("Dead() = false after connection death")
	}
	if _, err := m.Invoke(muxReq(99)); err == nil {
		t.Error("Invoke on a dead shared connection succeeded")
	}
	if err := m.SendOneway(muxReq(100)); err == nil {
		t.Error("SendOneway on a dead shared connection succeeded")
	}
}

// TestMuxPerCallTimeoutKeepsConnAlive: a per-call deadline abandons only the
// slow call — the shared connection stays up for everyone else, and the late
// reply is dropped (counted) rather than misdelivered.
func TestMuxPerCallTimeoutKeepsConnAlive(t *testing.T) {
	tr := NewInproc(wire.CDR)
	l, err := tr.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	release := make(chan struct{})
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		for {
			m, err := c.Recv()
			if err != nil {
				return
			}
			reply := &wire.Message{Type: wire.MsgReply, RequestID: m.RequestID, Status: wire.StatusOK}
			if m.Method == "slow" {
				go func() {
					<-release
					c.Send(reply)
				}()
				continue
			}
			c.Send(reply)
		}
	}()

	c, err := tr.Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	m := NewMuxConn(c)
	defer m.Close()

	slow := muxReq(1)
	slow.Method = "slow"
	p, err := m.Invoke(slow)
	if err != nil {
		t.Fatal(err)
	}
	expired := make(chan time.Time)
	close(expired) // deadline already passed
	if _, err := p.Wait(expired); !errors.Is(err, ErrMuxTimeout) {
		t.Fatalf("Wait with expired deadline = %v, want ErrMuxTimeout", err)
	}
	if n := m.InFlight(); n != 0 {
		t.Errorf("timed-out call still registered: InFlight() = %d", n)
	}

	close(release) // server now emits the late reply for request 1

	// The connection must remain usable for other callers.
	p2, err := m.Invoke(muxReq(2))
	if err != nil {
		t.Fatal(err)
	}
	r, err := p2.Wait(nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.RequestID != 2 {
		t.Errorf("reply routed to wrong caller: id %d", r.RequestID)
	}
	if m.Dead() {
		t.Error("shared connection died after a per-call timeout")
	}
	deadline := time.Now().Add(2 * time.Second)
	for m.lateCount() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if n := m.lateCount(); n != 1 {
		t.Errorf("late reply count = %d, want 1", n)
	}
}

// TestMuxPoolRedial: a width-1 pool hands every caller the same shared
// connection, and replaces it (counting the redial) after it dies.
func TestMuxPoolRedial(t *testing.T) {
	tr := NewInproc(wire.CDR)
	addr, stop := muxEchoServer(t, tr)
	defer stop()

	var dials int32
	p := &MuxPool{Dial: func(a string) (Conn, error) {
		atomic.AddInt32(&dials, 1)
		return tr.Dial(a)
	}}
	defer p.Close()

	mc, err := p.Get(addr)
	if err != nil {
		t.Fatal(err)
	}
	mc2, err := p.Get(addr)
	if err != nil {
		t.Fatal(err)
	}
	if mc2 != mc {
		t.Error("width-1 pool handed out distinct connections")
	}
	pr, err := mc.Invoke(muxReq(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pr.Wait(nil); err != nil {
		t.Fatal(err)
	}

	mc.Close()
	deadline := time.Now().Add(2 * time.Second)
	for !mc.Dead() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if !mc.Dead() {
		t.Fatal("closed connection never reported dead")
	}

	mc3, err := p.Get(addr)
	if err != nil {
		t.Fatal(err)
	}
	if mc3 == mc {
		t.Fatal("pool handed out the dead connection")
	}
	pr, err = mc3.Invoke(muxReq(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pr.Wait(nil); err != nil {
		t.Fatal(err)
	}

	st := p.Stats()
	if st.Dials != 2 || st.Redials != 1 || st.Active != 1 {
		t.Errorf("stats = %+v, want Dials 2 Redials 1 Active 1", st)
	}
	if n := atomic.LoadInt32(&dials); n != 2 {
		t.Errorf("dialer invoked %d times, want 2", n)
	}
}

// TestMuxPoolBreaker: dial failures trip the shared breaker and Get fails
// fast with ErrCircuitOpen, mirroring the exclusive pool's behavior.
func TestMuxPoolBreaker(t *testing.T) {
	dialErr := errors.New("endpoint down")
	p := &MuxPool{
		Dial:    func(string) (Conn, error) { return nil, dialErr },
		Breaker: NewBreakerSet(BreakerPolicy{Threshold: 2, Cooldown: time.Hour}),
	}
	defer p.Close()
	for i := 0; i < 2; i++ {
		if _, err := p.Get("dead"); !errors.Is(err, dialErr) {
			t.Fatalf("Get #%d = %v, want dial error", i+1, err)
		}
	}
	if _, err := p.Get("dead"); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("Get after threshold = %v, want ErrCircuitOpen", err)
	}
	if st := p.Breaker.State("dead"); st != BreakerOpen {
		t.Errorf("breaker state = %s, want open", st)
	}
}

// TestMuxPoolClosed: Get after Close returns the pool sentinel, and Close
// fails any calls still in flight on the shared connections.
func TestMuxPoolClosed(t *testing.T) {
	tr := NewInproc(wire.CDR)
	l, err := tr.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		c.Recv() // swallow the request, never reply
	}()

	p := &MuxPool{Dial: tr.Dial}
	mc, err := p.Get(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	pr, err := mc.Invoke(muxReq(1))
	if err != nil {
		t.Fatal(err)
	}
	p.Close()
	if _, err := pr.Wait(nil); err == nil {
		t.Error("in-flight call survived pool Close")
	}
	if _, err := p.Get(l.Addr()); !errors.Is(err, ErrPoolClosed) {
		t.Errorf("Get after Close = %v, want ErrPoolClosed", err)
	}
}

// TestMuxMidStreamFaultRecovery runs the mandated >=8 goroutines x >=100
// calls workload against a fault-injecting transport that kills every
// connection mid-stream (after 25 replies). Callers see their in-flight
// calls fail, re-Get from the pool, and finish on redialed connections.
func TestMuxMidStreamFaultRecovery(t *testing.T) {
	inner := NewInproc(wire.CDR)
	addr, stop := muxEchoServer(t, inner)
	defer stop()
	ft := NewFaultTransport(inner)
	ft.Decide = func(info FaultInfo) FaultVerdict {
		if info.Op == FaultRecv && info.PerConn == 25 {
			return FaultDrop // kill the shared connection mid-stream
		}
		return FaultPass
	}

	p := &MuxPool{Dial: ft.Dial}
	defer p.Close()

	const callers, perCaller = 8, 100
	var nextID uint32
	var failures int32
	errs := make(chan error, callers)
	for g := 0; g < callers; g++ {
		go func() {
			for i := 0; i < perCaller; i++ {
				id := atomic.AddUint32(&nextID, 1)
				for {
					mc, err := p.Get(addr)
					if err != nil {
						errs <- err
						return
					}
					pr, err := mc.Invoke(muxReq(id))
					if err != nil {
						atomic.AddInt32(&failures, 1)
						continue // conn died under us: redial via Get
					}
					r, err := pr.Wait(nil)
					if err != nil {
						atomic.AddInt32(&failures, 1)
						continue
					}
					if r.RequestID != id {
						errs <- fmt.Errorf("call %d got reply %d", id, r.RequestID)
						return
					}
					break
				}
			}
			errs <- nil
		}()
	}
	for g := 0; g < callers; g++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	st := p.Stats()
	if st.Redials == 0 {
		t.Error("mid-stream kills produced no redials")
	}
	if atomic.LoadInt32(&failures) == 0 {
		t.Error("mid-stream kills produced no failed calls")
	}
	t.Logf("stats after recovery: %+v (%d call failures)", st, failures)
}
