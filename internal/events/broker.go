package events

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/transport"
	"repro/internal/wire"
)

// counters is one accounting ledger (per subscriber, plus a broker-wide
// aggregate updated in lockstep).
type counters struct {
	enqueued    atomic.Uint64
	delivered   atomic.Uint64
	dropped     atomic.Uint64
	coalesced   atomic.Uint64
	undelivered atomic.Uint64
	discarded   atomic.Uint64
}

func (c *counters) snapshot() Stats {
	return Stats{
		Enqueued:    c.enqueued.Load(),
		Delivered:   c.delivered.Load(),
		Dropped:     c.dropped.Load(),
		Coalesced:   c.coalesced.Load(),
		Undelivered: c.undelivered.Load(),
		Discarded:   c.discarded.Load(),
	}
}

// subscriber is one consumer's registration: its queue, its delivery route
// (local callback or remote address), and its ledger.
type subscriber struct {
	id      uint64
	ref     string // stringified object reference events are addressed to
	addr    string // "" for collocated subscribers
	deliver Deliver
	q       *subQueue
	c       counters
}

// SubOptions tunes one subscription; zero fields inherit the broker's
// Config defaults (Policy's zero value IS DropOldest, the default).
type SubOptions struct {
	QueueDepth int
	Policy     DropPolicy
}

// Broker fans events out to subscribers. One broker backs one channel.
type Broker struct {
	cfg Config

	mu       sync.Mutex
	subs     map[uint64]*subscriber
	eps      map[string]*endpoint
	dialing  map[string]*dialWait // singleflight slot per addr being dialed
	lastFail map[string]int64     // unix nanos of the last dial failure / conn death per addr
	nextID   uint64
	closed   bool

	// snapshot is the publish path's lock-free view of the subscriber set,
	// rebuilt copy-on-write by subscribe/unsubscribe.
	snapshot atomic.Pointer[[]*subscriber]

	nextReq   atomic.Uint32
	published atomic.Uint64
	agg       counters

	wg sync.WaitGroup // delivery workers and endpoint drains
}

// NewBroker creates an empty broker.
func NewBroker(cfg Config) *Broker {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = defaultQueueDepth
	}
	if cfg.RedialInterval <= 0 {
		cfg.RedialInterval = defaultRedialInterval
	}
	b := &Broker{
		cfg:      cfg,
		subs:     make(map[uint64]*subscriber),
		eps:      make(map[string]*endpoint),
		dialing:  make(map[string]*dialWait),
		lastFail: make(map[string]int64),
	}
	empty := []*subscriber{}
	b.snapshot.Store(&empty)
	return b
}

// SubscribeLocal registers a collocated consumer: events are handed to d on
// the subscriber's delivery worker, no connection involved.
func (b *Broker) SubscribeLocal(ref string, d Deliver, o SubOptions) (uint64, error) {
	if d == nil {
		return 0, fmt.Errorf("events: local subscriber %q has no deliver callback", ref)
	}
	return b.addSubscriber(&subscriber{ref: ref, deliver: d}, o)
}

// SubscribeRemote registers a consumer in another address space: events are
// framed as oneway requests to ref and sent over the (shared, coalesced)
// connection to addr.
func (b *Broker) SubscribeRemote(ref, addr string, o SubOptions) (uint64, error) {
	if addr == "" {
		return 0, fmt.Errorf("events: remote subscriber %q has no address", ref)
	}
	if b.cfg.Dial == nil {
		return 0, fmt.Errorf("events: broker has no Dial; cannot reach subscriber at %q", addr)
	}
	return b.addSubscriber(&subscriber{ref: ref, addr: addr}, o)
}

func (b *Broker) addSubscriber(s *subscriber, o SubOptions) (uint64, error) {
	if o.QueueDepth <= 0 {
		o.QueueDepth = b.cfg.QueueDepth
	}
	s.q = newSubQueue(o.QueueDepth, o.Policy)
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return 0, ErrClosed
	}
	b.nextID++
	s.id = b.nextID
	b.subs[s.id] = s
	b.rebuildSnapshotLocked()
	b.mu.Unlock()
	b.wg.Add(1)
	go b.worker(s)
	return s.id, nil
}

// Unsubscribe removes a subscription, discarding whatever it still has
// queued. It reports whether the id was live.
func (b *Broker) Unsubscribe(id uint64) bool {
	b.mu.Lock()
	s, ok := b.subs[id]
	if ok {
		delete(b.subs, id)
		b.rebuildSnapshotLocked()
	}
	b.mu.Unlock()
	if !ok {
		return false
	}
	b.discard(s, s.q.close())
	return true
}

// rebuildSnapshotLocked re-derives the publish path's subscriber slice.
// Callers hold b.mu.
func (b *Broker) rebuildSnapshotLocked() {
	subs := make([]*subscriber, 0, len(b.subs))
	for _, s := range b.subs {
		subs = append(subs, s)
	}
	b.snapshot.Store(&subs)
}

// discard accounts and frees events that will never be delivered.
func (b *Broker) discard(s *subscriber, ms []*wire.Message) {
	for _, m := range ms {
		s.c.discarded.Add(1)
		b.agg.discarded.Add(1)
		wire.FreeMessage(m)
	}
}

// Publish fans one event out to every current subscriber and returns the
// number of queues it was admitted to. The body is encoded exactly once:
// src is leased on demand (no copy when it came off the wire) and every
// per-subscriber message retain-shares that lease, so the publisher's cost
// is one pooled struct and one enqueue per subscriber — it never blocks on
// a slow consumer, a full queue, or a dead connection. src remains the
// caller's to free.
func (b *Broker) Publish(method string, src *wire.Message) int {
	b.published.Add(1)
	subs := *b.snapshot.Load()
	if len(subs) == 0 {
		return 0
	}
	src.EnsureLeased()
	n := 0
	for _, s := range subs {
		dm := wire.NewMessage()
		dm.Type = wire.MsgRequest
		dm.RequestID = b.nextReq.Add(1)
		dm.TargetRef = s.ref
		dm.Method = method
		dm.Oneway = true
		src.ShareBodyInto(dm)
		displaced, how := s.q.enqueue(dm)
		switch how {
		case enqClosed:
			wire.FreeMessage(dm)
			continue
		case enqCoalesced:
			s.c.coalesced.Add(1)
			b.agg.coalesced.Add(1)
			wire.FreeMessage(displaced)
		case enqDropped:
			s.c.dropped.Add(1)
			b.agg.dropped.Add(1)
			wire.FreeMessage(displaced)
		}
		s.c.enqueued.Add(1)
		b.agg.enqueued.Add(1)
		n++
	}
	return n
}

// worker is one subscriber's delivery loop: it drains the queue in order,
// delivering locally or over the shared endpoint, and frees each message
// once its fate is recorded.
func (b *Broker) worker(s *subscriber) {
	defer b.wg.Done()
	for {
		m := s.q.pop()
		if m == nil {
			return
		}
		var err error
		if s.addr == "" {
			err = s.deliver(m)
		} else {
			err = b.sendRemote(s, m)
		}
		if err != nil {
			s.c.undelivered.Add(1)
			b.agg.undelivered.Add(1)
		} else {
			s.c.delivered.Add(1)
			b.agg.delivered.Add(1)
		}
		wire.FreeMessage(m)
	}
}

// sendRemote routes one event through the subscriber's shared endpoint.
// SendBatched (never Send) is the point of the design: each subscriber's
// worker parks its frame in the coalescer's queue, so the workers fanning
// one publish out to N subscribers on one connection are gathered into one
// writev instead of N sequential sends.
func (b *Broker) sendRemote(s *subscriber, m *wire.Message) error {
	for attempt := 0; ; attempt++ {
		ep, err := b.endpoint(s.addr)
		if err != nil {
			return err
		}
		err = ep.co.SendBatched(m)
		if err == nil {
			return nil
		}
		b.failEndpoint(ep)
		if attempt == 0 && errors.Is(err, transport.ErrNotSent) {
			// The frame never reached the wire (the coalescer was already
			// poisoned when we enqueued), so one retry on a fresh
			// connection is safe and keeps a single failure from marking
			// a whole batch of queued events undelivered.
			continue
		}
		return err
	}
}

// Stats returns the broker-wide ledger.
func (b *Broker) Stats() Stats {
	st := b.agg.snapshot()
	st.Published = b.published.Load()
	return st
}

// SubscriberStats returns one subscription's ledger (Published is zero:
// publishes are broker-wide). It reports false after the id is removed.
func (b *Broker) SubscriberStats(id uint64) (Stats, bool) {
	b.mu.Lock()
	s, ok := b.subs[id]
	b.mu.Unlock()
	if !ok {
		return Stats{}, false
	}
	return s.c.snapshot(), true
}

// Subscribers returns the live subscription count.
func (b *Broker) Subscribers() int {
	return len(*b.snapshot.Load())
}

// Close shuts the broker down: pending events are discarded (and counted),
// delivery workers and endpoint connections are torn down, and Close blocks
// until every worker has exited. Idempotent.
func (b *Broker) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	subs := make([]*subscriber, 0, len(b.subs))
	for _, s := range b.subs {
		subs = append(subs, s)
	}
	b.subs = make(map[uint64]*subscriber)
	eps := make([]*endpoint, 0, len(b.eps))
	for _, ep := range b.eps {
		eps = append(eps, ep)
	}
	b.eps = make(map[string]*endpoint)
	empty := []*subscriber{}
	b.snapshot.Store(&empty)
	b.mu.Unlock()
	for _, s := range subs {
		b.discard(s, s.q.close())
	}
	for _, ep := range eps {
		b.failEndpoint(ep)
	}
	b.wg.Wait()
}
