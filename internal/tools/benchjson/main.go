// Command benchjson converts `go test -bench` text output on stdin into a
// JSON document on stdout, so benchmark runs can be committed and diffed as
// data (BENCH_results.json) instead of pasted prose.
//
// Usage:
//
//	go test -bench . -benchmem . | go run ./internal/tools/benchjson
//
// Lines that are not benchmark results (package headers, PASS/ok, logs) are
// ignored. When the same benchmark appears more than once (-count=N), the
// last result wins — matching how a human reads the tail of a bench log.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// benchLine matches e.g.
//
//	BenchmarkFig4_RemoteCall/cdr-8   166731   6925 ns/op   1552 B/op   30 allocs/op
//
// The -benchmem columns are optional; fractional ns/op values occur for
// sub-nanosecond benchmarks.
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+)\s+(\d+)\s+([\d.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

type result struct {
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  *int64  `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64  `json:"allocs_per_op,omitempty"`
}

func main() {
	results := make(map[string]result)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, _ := strconv.ParseFloat(m[3], 64)
		r := result{Iterations: iters, NsPerOp: ns}
		if m[4] != "" {
			b, _ := strconv.ParseInt(m[4], 10, 64)
			r.BytesPerOp = &b
		}
		if m[5] != "" {
			a, _ := strconv.ParseInt(m[5], 10, 64)
			r.AllocsPerOp = &a
		}
		results[m[1]] = r
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}

	// Deterministic output: sorted names, stable key order via struct tags.
	names := make([]string, 0, len(results))
	for n := range results {
		names = append(names, n)
	}
	sort.Strings(names)

	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	fmt.Fprintln(out, "{")
	for i, n := range names {
		v, _ := json.Marshal(results[n])
		comma := ","
		if i == len(names)-1 {
			comma = ""
		}
		fmt.Fprintf(out, "  %q: %s%s\n", n, v, comma)
	}
	fmt.Fprintln(out, "}")
}
