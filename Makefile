# Development entry points. Everything is plain go tooling; the Makefile
# just pins the invocations CI and reviewers should use.

GO ?= go

.PHONY: all build test vet race fuzz bench check fmt

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-detect the runtime packages the fault-tolerance layer touches.
race:
	$(GO) test -race ./internal/orb/... ./internal/transport/...

# Brief fuzz pass over the reference parser + wire framings.
fuzz:
	$(GO) test -fuzz FuzzParseRef -fuzztime 30s ./internal/orb/

bench:
	$(GO) test -bench . -benchmem ./...

fmt:
	gofmt -l -w .

# The tier-1 gate: what must be green before merging.
check: build vet test race
