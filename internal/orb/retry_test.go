package orb

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/transport"
	"repro/internal/wire"
)

// faultSession builds a server+client pair over an in-process transport
// wrapped in fault injection. Only the client side is faulted (the
// FaultTransport passes Listen through), and tweak customizes the client's
// Options (retry policy, breaker, ...).
func faultSession(t testing.TB, tweak func(*Options)) (*ORB, ObjectRef, *transport.FaultTransport) {
	t.Helper()
	ft := transport.NewFaultTransport(transport.NewInproc(wire.Text))

	server := New(Options{Protocol: wire.Text, Transport: ft, ListenAddr: ":0"})
	if err := server.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { server.Shutdown() })
	impl := &echoImpl{}
	ref, err := server.Export(impl, NewEchoTable(impl))
	if err != nil {
		t.Fatal(err)
	}

	copts := Options{Protocol: wire.Text, Transport: ft}
	if tweak != nil {
		tweak(&copts)
	}
	client := New(copts)
	registerEchoStub(client)
	t.Cleanup(func() { client.Shutdown() })
	return client, ref, ft
}

// observeAttempts registers an interceptor recording ClientContext.Attempts
// of the most recent invocation.
func observeAttempts(client *ORB) *int {
	n := new(int)
	client.AddClientInterceptor(func(ctx *ClientContext, invoke func() error) error {
		err := invoke()
		*n = ctx.Attempts
		return err
	})
	return n
}

// TestRetryFirstSendDrop is the headline acceptance scenario: a transport
// that drops the connection on the first send to each endpoint, a retry
// policy with MaxAttempts=3 — every call completes.
func TestRetryFirstSendDrop(t *testing.T) {
	client, ref, ft := faultSession(t, func(o *Options) {
		o.Retry = RetryPolicy{MaxAttempts: 3, Seed: 1}
	})
	ft.Decide = func(i transport.FaultInfo) transport.FaultVerdict {
		if i.Op == transport.FaultSend && i.PerAddr == 1 {
			return transport.FaultDrop
		}
		return transport.FaultPass
	}
	attempts := observeAttempts(client)

	obj, err := client.Resolve(ref)
	if err != nil {
		t.Fatal(err)
	}
	echo := obj.(Echo)
	for i := 0; i < 20; i++ {
		want := fmt.Sprintf("msg-%d", i)
		got, err := echo.Echo(want)
		if err != nil {
			t.Fatalf("call %d failed despite retry: %v", i, err)
		}
		if got != want {
			t.Fatalf("call %d = %q, want %q", i, got, want)
		}
	}
	if *attempts != 1 {
		t.Errorf("last call attempts = %d, want 1 (only the first send is dropped)", *attempts)
	}
	st := client.Stats()
	if st.Retries != 1 {
		t.Errorf("retries = %d, want exactly 1 (the dropped first send)", st.Retries)
	}
	// Oneways ride the same policy.
	if err := echo.Poke(); err != nil {
		t.Errorf("oneway after faults: %v", err)
	}
}

// TestRetryDisabledSingleAttempt: the zero policy makes exactly one attempt
// and surfaces the failure — the pre-PR behavior.
func TestRetryDisabledSingleAttempt(t *testing.T) {
	client, ref, ft := faultSession(t, nil)
	ft.Decide = func(i transport.FaultInfo) transport.FaultVerdict {
		if i.Op == transport.FaultSend {
			return transport.FaultFail
		}
		return transport.FaultPass
	}
	attempts := observeAttempts(client)

	obj, _ := client.Resolve(ref)
	if _, err := obj.(Echo).Echo("x"); !errors.Is(err, transport.ErrInjected) {
		t.Fatalf("err = %v, want injected send failure", err)
	}
	if *attempts != 1 {
		t.Errorf("attempts = %d, want 1", *attempts)
	}
	if st := client.Stats(); st.Retries != 0 {
		t.Errorf("retries = %d, want 0", st.Retries)
	}
}

// TestRetryAmbiguousRequiresIdempotent: a lost reply (the request reached
// the server) is retried only for calls declared idempotent.
func TestRetryAmbiguousRequiresIdempotent(t *testing.T) {
	newSession := func(t *testing.T, pol RetryPolicy) (*ORB, ObjectRef, *transport.FaultTransport) {
		client, ref, ft := faultSession(t, func(o *Options) { o.Retry = pol })
		// Drop the first reply read per endpoint: the server has already
		// processed the request when the client's recv fails.
		ft.Decide = func(i transport.FaultInfo) transport.FaultVerdict {
			if i.Op == transport.FaultRecv && i.PerAddr == 1 {
				return transport.FaultDrop
			}
			return transport.FaultPass
		}
		return client, ref, ft
	}

	t.Run("non-idempotent fails", func(t *testing.T) {
		client, ref, _ := newSession(t, RetryPolicy{MaxAttempts: 3, Seed: 1})
		attempts := observeAttempts(client)
		obj, _ := client.Resolve(ref)
		if _, err := obj.(Echo).Echo("x"); err == nil {
			t.Fatal("ambiguous failure of a non-idempotent call must surface")
		}
		if *attempts != 1 {
			t.Errorf("attempts = %d, want 1 (no retry after the request may have run)", *attempts)
		}
	})

	t.Run("policy predicate retries", func(t *testing.T) {
		client, ref, _ := newSession(t, RetryPolicy{
			MaxAttempts: 3, Seed: 1,
			Idempotent: func(m string) bool { return m == "echo" },
		})
		attempts := observeAttempts(client)
		obj, _ := client.Resolve(ref)
		got, err := obj.(Echo).Echo("again")
		if err != nil || got != "again" {
			t.Fatalf("idempotent call = %q, %v", got, err)
		}
		if *attempts != 2 {
			t.Errorf("attempts = %d, want 2", *attempts)
		}
	})

	t.Run("SetIdempotent retries", func(t *testing.T) {
		client, ref, _ := newSession(t, RetryPolicy{MaxAttempts: 3, Seed: 1})
		c, err := client.NewCall(ref, "ping")
		if err != nil {
			t.Fatal(err)
		}
		c.SetIdempotent(true)
		if err := c.Invoke(); err != nil {
			t.Fatalf("idempotent-marked call: %v", err)
		}
	})
}

// TestRetryBudget: the token bucket bounds amplification ORB-wide.
func TestRetryBudget(t *testing.T) {
	client, ref, ft := faultSession(t, func(o *Options) {
		o.Retry = RetryPolicy{MaxAttempts: 3, Budget: 1, Seed: 1}
	})
	ft.Decide = func(i transport.FaultInfo) transport.FaultVerdict {
		if i.Op == transport.FaultSend {
			return transport.FaultFail
		}
		return transport.FaultPass
	}
	attempts := observeAttempts(client)
	obj, _ := client.Resolve(ref)
	echo := obj.(Echo)

	// First failing call: one retry consumes the whole budget.
	if _, err := echo.Echo("a"); err == nil {
		t.Fatal("call with every send failing must error")
	}
	if *attempts != 2 {
		t.Errorf("first call attempts = %d, want 2 (MaxAttempts=3 capped by Budget=1)", *attempts)
	}
	// Second failing call: no tokens left, single attempt.
	if _, err := echo.Echo("b"); err == nil {
		t.Fatal("second call must error")
	}
	if *attempts != 1 {
		t.Errorf("second call attempts = %d, want 1 (budget exhausted)", *attempts)
	}

	// A success refunds a token.
	ft.Decide = nil
	if _, err := echo.Echo("ok"); err != nil {
		t.Fatal(err)
	}
	ft.Decide = func(i transport.FaultInfo) transport.FaultVerdict {
		if i.Op == transport.FaultSend {
			return transport.FaultFail
		}
		return transport.FaultPass
	}
	if _, err := echo.Echo("c"); err == nil {
		t.Fatal("call must error")
	}
	if *attempts != 2 {
		t.Errorf("post-refund attempts = %d, want 2", *attempts)
	}
}

// TestBreakerFailsFast is the second acceptance scenario: once the breaker
// trips on a dead endpoint, calls fail immediately — far quicker than the
// retry backoff floor — and stop dialing.
func TestBreakerFailsFast(t *testing.T) {
	const backoff = 200 * time.Millisecond
	var transitions []string
	var mu sync.Mutex
	client, ref, ft := faultSession(t, func(o *Options) {
		o.Retry = RetryPolicy{MaxAttempts: 3, Backoff: backoff, Seed: 1}
		o.Breaker = transport.BreakerPolicy{Threshold: 3, Cooldown: time.Hour}
		o.OnBreakerChange = func(addr string, from, to transport.BreakerState) {
			mu.Lock()
			transitions = append(transitions, from.String()+">"+to.String())
			mu.Unlock()
		}
	})
	ft.Decide = func(i transport.FaultInfo) transport.FaultVerdict {
		if i.Op == transport.FaultDial {
			return transport.FaultFail
		}
		return transport.FaultPass
	}
	obj, _ := client.Resolve(ref)
	echo := obj.(Echo)

	// Call 1: three dial attempts (MaxAttempts=3), all fail — the third
	// consecutive failure trips the breaker.
	if _, err := echo.Echo("x"); err == nil {
		t.Fatal("call against dead endpoint succeeded")
	}
	if got := ft.Counts()[transport.FaultDial]; got != 3 {
		t.Fatalf("dials = %d, want 3", got)
	}

	// Call 2: fails fast on the open breaker — no dial, no backoff sleep.
	start := time.Now()
	_, err := echo.Echo("y")
	elapsed := time.Since(start)
	if !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("err = %v, want ErrCircuitOpen", err)
	}
	if elapsed >= backoff/2 {
		t.Errorf("tripped call took %v, want well under the %v backoff floor", elapsed, backoff/2)
	}
	if got := ft.Counts()[transport.FaultDial]; got != 3 {
		t.Errorf("dials after trip = %d, want still 3 (breaker must prevent dialing)", got)
	}

	// Observability: the hook saw the trip and PoolStats exposes the state.
	mu.Lock()
	trans := strings.Join(transitions, ",")
	mu.Unlock()
	if trans != "closed>open" {
		t.Errorf("transitions = %q, want closed>open", trans)
	}
	if st := client.PoolStats(); st.Breakers[ref.Addr] != transport.BreakerOpen {
		t.Errorf("PoolStats breakers = %v, want %s open", st.Breakers, ref.Addr)
	}
	if st := client.PoolStats(); st.Rejected == 0 {
		t.Error("rejected checkouts not counted")
	}
}

// TestStaleCachedConnRetry: a cached connection whose peer restarted is
// retried transparently — the EOF on first read of a reused connection
// means the new server never saw the request.
func TestStaleCachedConnRetry(t *testing.T) {
	inproc := transport.NewInproc(wire.Text)
	mkServer := func() (*ORB, ObjectRef) {
		s := New(Options{Protocol: wire.Text, Transport: inproc, ListenAddr: "ep"})
		if err := s.Start(); err != nil {
			t.Fatal(err)
		}
		impl := &echoImpl{}
		ref, err := s.Export(impl, NewEchoTable(impl))
		if err != nil {
			t.Fatal(err)
		}
		return s, ref
	}

	s1, ref := mkServer()
	client := New(Options{
		Protocol: wire.Text, Transport: inproc,
		Retry: RetryPolicy{MaxAttempts: 2, Seed: 1},
	})
	registerEchoStub(client)
	t.Cleanup(func() { client.Shutdown() })
	obj, err := client.Resolve(ref)
	if err != nil {
		t.Fatal(err)
	}
	echo := obj.(Echo)

	if _, err := echo.Echo("warm"); err != nil {
		t.Fatal(err) // connection now cached in the client pool
	}
	s1.Shutdown()

	// Same endpoint, fresh server; the first object exported gets the same
	// object identifier, so the old reference stays valid.
	s2, ref2 := mkServer()
	t.Cleanup(func() { s2.Shutdown() })
	if ref2 != ref {
		t.Fatalf("restarted server ref = %s, want %s", ref2, ref)
	}

	got, err := echo.Echo("after restart")
	if err != nil {
		t.Fatalf("call through stale cached conn: %v", err)
	}
	if got != "after restart" {
		t.Errorf("Echo = %q", got)
	}
	if st := client.Stats(); st.Retries != 1 {
		t.Errorf("retries = %d, want 1", st.Retries)
	}
}

// TestShutdownMapsPoolClosed: invoking through a shut-down client ORB
// reports ErrShutdown, not a bare transport error.
func TestShutdownMapsPoolClosed(t *testing.T) {
	client, ref, _ := faultSession(t, nil)
	obj, err := client.Resolve(ref)
	if err != nil {
		t.Fatal(err)
	}
	echo := obj.(Echo)
	if _, err := echo.Echo("up"); err != nil {
		t.Fatal(err)
	}
	client.Shutdown()
	_, err = echo.Echo("down")
	if !errors.Is(err, ErrShutdown) {
		t.Errorf("call after shutdown = %v, want ErrShutdown", err)
	}
}

// TestShutdownDrainsInFlight: Shutdown waits for a dispatch already in
// progress, whose reply still reaches the client.
func TestShutdownDrainsInFlight(t *testing.T) {
	impl := &gatedEcho{entered: make(chan struct{}, 1), release: make(chan struct{})}
	server := New(tcpText())
	if err := server.Start(); err != nil {
		t.Fatal(err)
	}
	ref, err := server.Export(impl, NewEchoTable(impl))
	if err != nil {
		t.Fatal(err)
	}
	client := New(tcpText())
	registerEchoStub(client)
	defer client.Shutdown()
	obj, err := client.Resolve(ref)
	if err != nil {
		t.Fatal(err)
	}

	type result struct {
		got string
		err error
	}
	callDone := make(chan result, 1)
	go func() {
		got, err := obj.(Echo).Echo("draining")
		callDone <- result{got, err}
	}()
	<-impl.entered // the dispatch is running

	shutDone := make(chan struct{})
	go func() {
		server.Shutdown()
		close(shutDone)
	}()
	// Shutdown must be draining, not killing: the call is still pending.
	select {
	case r := <-callDone:
		t.Fatalf("call finished before release: %+v", r)
	case <-shutDone:
		t.Fatal("shutdown completed with a dispatch in flight")
	case <-time.After(100 * time.Millisecond):
	}

	close(impl.release)
	select {
	case r := <-callDone:
		if r.err != nil || r.got != "draining" {
			t.Errorf("drained call = %q, %v", r.got, r.err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("call never completed")
	}
	select {
	case <-shutDone:
	case <-time.After(5 * time.Second):
		t.Fatal("shutdown never completed")
	}
}

// gatedEcho blocks Echo until released, for shutdown-drain tests.
type gatedEcho struct {
	echoImpl
	entered chan struct{}
	release chan struct{}
}

func (g *gatedEcho) Echo(v string) (string, error) {
	g.entered <- struct{}{}
	<-g.release
	return v, nil
}

// TestStaleReplyFlood: a misbehaving peer spewing mismatched replies cannot
// spin an invocation forever — the client gives up after a bounded number.
func TestStaleReplyFlood(t *testing.T) {
	client := New(Options{Protocol: wire.Text, Transport: junkTransport{}})
	defer client.Shutdown()
	ref := ObjectRef{Proto: "junk", Addr: "x", ObjectID: "1", TypeID: echoTypeID}
	c, err := client.NewCall(ref, "ping")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- c.Invoke() }()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "mismatched") {
			t.Errorf("err = %v, want mismatched-messages failure", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stale-reply flood hung the invocation")
	}
}

// junkTransport dials connections that answer every request with replies
// for a request ID nobody asked about.
type junkTransport struct{}

func (junkTransport) Name() string { return "junk" }
func (junkTransport) Listen(addr string) (transport.Listener, error) {
	return nil, fmt.Errorf("junk transport cannot listen")
}
func (junkTransport) Dial(addr string) (transport.Conn, error) { return &junkConn{}, nil }

type junkConn struct{}

func (*junkConn) Send(*wire.Message) error { return nil }
func (*junkConn) Recv() (*wire.Message, error) {
	return &wire.Message{Type: wire.MsgReply, RequestID: 0, Status: wire.StatusOK}, nil
}
func (*junkConn) SetDeadline(time.Time) error { return nil }
func (*junkConn) Close() error                { return nil }
func (*junkConn) RemoteAddr() string          { return "junk" }

// TestDeadlineClearedBeforeReuse: a pooled connection must not carry the
// previous call's deadline. With the old order (Put before clearing) the
// second call below raced against an already-expired deadline.
func TestDeadlineClearedBeforeReuse(t *testing.T) {
	client, ref, _ := newServerClient(t, func() Options {
		return Options{Protocol: wire.Text, CallTimeout: 300 * time.Millisecond}
	})
	obj, err := client.Resolve(ref)
	if err != nil {
		t.Fatal(err)
	}
	echo := obj.(Echo)
	if _, err := echo.Echo("first"); err != nil {
		t.Fatal(err)
	}
	// Let the first call's deadline pass while the connection sits idle.
	time.Sleep(400 * time.Millisecond)
	if _, err := echo.Echo("second"); err != nil {
		t.Fatalf("reused connection inherited a stale deadline: %v", err)
	}
	if st := client.PoolStats(); st.Hits < 1 {
		t.Fatalf("second call did not reuse the cached connection: %+v", st)
	}
}

// TestDisabledPoliciesWireIdentical: with every robustness knob at its zero
// value the client sends exactly one request message per invocation with
// the same shape as the seed implementation (request ids dense from 1, no
// extra traffic).
func TestDisabledPoliciesWireIdentical(t *testing.T) {
	client, ref, ft := faultSession(t, nil)
	var mu sync.Mutex
	var ops []transport.FaultInfo
	ft.Decide = func(i transport.FaultInfo) transport.FaultVerdict {
		mu.Lock()
		ops = append(ops, i)
		mu.Unlock()
		return transport.FaultPass
	}
	obj, _ := client.Resolve(ref)
	echo := obj.(Echo)
	for i := 0; i < 3; i++ {
		if _, err := echo.Echo("x"); err != nil {
			t.Fatal(err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	var dials, sends, recvs int
	for _, op := range ops {
		switch op.Op {
		case transport.FaultDial:
			dials++
		case transport.FaultSend:
			sends++
		case transport.FaultRecv:
			recvs++
		}
	}
	if dials != 1 || sends != 3 || recvs != 3 {
		t.Errorf("wire ops = %d dials, %d sends, %d recvs; want 1/3/3", dials, sends, recvs)
	}
}
