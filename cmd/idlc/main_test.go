package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// write creates a file under dir and returns its path.
func write(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const testIDL = `module Demo {
  interface Hello {
    string greet(in string who);
  };
};
`

func TestRunGenerate(t *testing.T) {
	dir := t.TempDir()
	in := write(t, dir, "demo.idl", testIDL)
	out := filepath.Join(dir, "out")
	if err := run([]string{"-m", "heidi-cpp", "-o", out, in}); err != nil {
		t.Fatal(err)
	}
	hh, err := os.ReadFile(filepath.Join(out, "demo.hh"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(hh), "class HdHello") {
		t.Errorf("demo.hh:\n%s", hh)
	}
	if _, err := os.Stat(filepath.Join(out, "demo_rmi.hh")); err != nil {
		t.Error("stub/skeleton file missing")
	}
}

func TestRunGoMapping(t *testing.T) {
	dir := t.TempDir()
	in := write(t, dir, "demo.idl", testIDL)
	if err := run([]string{"-m", "go", "-pkg", "demo", "-o", dir, in}); err != nil {
		t.Fatal(err)
	}
	src, err := os.ReadFile(filepath.Join(dir, "demo_gen.go"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"package demo", "type HdHello interface", "func NewHdHelloTable"} {
		if !strings.Contains(string(src), want) {
			t.Errorf("generated Go missing %q", want)
		}
	}
}

func TestRunTwoStage(t *testing.T) {
	dir := t.TempDir()
	in := write(t, dir, "demo.idl", testIDL)

	// Stage 1 writes the EST script to stdout; capture via pipe.
	script := captureStdout(t, func() {
		if err := run([]string{"-emit-script", in}); err != nil {
			t.Error(err)
		}
	})
	if !strings.HasPrefix(script, "est 1\n") {
		t.Fatalf("script header: %q", script[:20])
	}

	// Stage 2 consumes the script file.
	est := write(t, dir, "demo.est", script)
	out := filepath.Join(dir, "gen")
	if err := run([]string{"-from-script", "-m", "tcl", "-o", out, est}); err != nil {
		t.Fatal(err)
	}
	tcl, err := os.ReadFile(filepath.Join(out, "Hello.tcl"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(tcl), "class HelloStub") {
		t.Errorf("Hello.tcl:\n%s", tcl)
	}
}

func TestRunDumpEST(t *testing.T) {
	dir := t.TempDir()
	in := write(t, dir, "demo.idl", testIDL)
	dump := captureStdout(t, func() {
		if err := run([]string{"-dump-est", in}); err != nil {
			t.Error(err)
		}
	})
	for _, want := range []string{`Interface "Hello"`, "[methodList]"} {
		if !strings.Contains(dump, want) {
			t.Errorf("dump missing %q:\n%s", want, dump)
		}
	}
}

func TestRunIncludes(t *testing.T) {
	dir := t.TempDir()
	incDir := filepath.Join(dir, "inc")
	if err := os.MkdirAll(incDir, 0o755); err != nil {
		t.Fatal(err)
	}
	write(t, incDir, "base.idl", "interface Base { void ping(); };")
	in := write(t, dir, "derived.idl", `#include "base.idl"
interface Derived : Base { void extra(); };`)
	out := filepath.Join(dir, "gen")
	if err := run([]string{"-m", "heidi-cpp", "-I", incDir, "-o", out, in}); err != nil {
		t.Fatal(err)
	}
	hh, err := os.ReadFile(filepath.Join(out, "derived.hh"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(hh), "virtual public HdBase") {
		t.Error("derived.hh missing included base")
	}
	if strings.Contains(string(hh), "class HdBase") {
		t.Error("derived.hh generated code for the included unit")
	}
}

func TestRunCustomTemplate(t *testing.T) {
	dir := t.TempDir()
	in := write(t, dir, "demo.idl", testIDL)
	tpl := write(t, dir, "list.tpl", `@foreach interfaceList
${interfaceName}: ${repoID}
@end interfaceList
`)
	got := captureStdout(t, func() {
		if err := run([]string{"-template", tpl, "-stdout", in}); err != nil {
			t.Error(err)
		}
	})
	if !strings.Contains(got, "Demo::Hello: IDL:Demo/Hello:1.0") {
		t.Errorf("custom template output:\n%s", got)
	}
}

func TestRunList(t *testing.T) {
	got := captureStdout(t, func() {
		if err := run([]string{"-list"}); err != nil {
			t.Error(err)
		}
	})
	for _, want := range []string{"heidi-cpp", "corba-cpp", "java", "tcl", "go"} {
		if !strings.Contains(got, want) {
			t.Errorf("-list missing %q", want)
		}
	}
}

func TestRunVetBlocksGeneration(t *testing.T) {
	dir := t.TempDir()
	// Parses cleanly but fails idlvet: "foo" and "Foo" collide under
	// CORBA's case-insensitive identifier rules.
	in := write(t, dir, "bad.idl", "interface I { void foo(); void Foo(); };\n")
	out := filepath.Join(dir, "gen")

	err := run([]string{"-m", "heidi-cpp", "-o", out, in})
	if err == nil || !strings.Contains(err.Error(), "idlvet") {
		t.Fatalf("run on vet-failing spec: err=%v, want idlvet error", err)
	}
	if _, statErr := os.Stat(out); !os.IsNotExist(statErr) {
		t.Error("output directory created despite vet errors")
	}

	// -novet bypasses the gate and generation proceeds.
	if err := run([]string{"-m", "heidi-cpp", "-novet", "-o", out, in}); err != nil {
		t.Fatalf("-novet: %v", err)
	}
	if _, err := os.Stat(filepath.Join(out, "bad.hh")); err != nil {
		t.Error("-novet did not generate bad.hh")
	}
}

func TestRunErrors(t *testing.T) {
	dir := t.TempDir()
	in := write(t, dir, "demo.idl", testIDL)
	bad := write(t, dir, "bad.idl", "interface {")

	cases := [][]string{
		{},                              // no input
		{in},                            // no mapping
		{"-m", "cobol", in},             // unknown mapping
		{"-m", "heidi-cpp", bad},        // parse error
		{"-m", "heidi-cpp", "gone.idl"}, // missing file
		{"-from-script", in},            // -from-script without -m
		{"-m", "heidi-cpp", in, in},     // two inputs
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

// captureStdout redirects os.Stdout for the duration of fn.
func captureStdout(t *testing.T, fn func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string, 1)
	go func() {
		buf := make([]byte, 0, 4096)
		tmp := make([]byte, 4096)
		for {
			n, err := r.Read(tmp)
			buf = append(buf, tmp[:n]...)
			if err != nil {
				break
			}
		}
		done <- string(buf)
	}()
	fn()
	w.Close()
	os.Stdout = old
	return <-done
}
