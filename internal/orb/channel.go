package orb

import (
	"fmt"

	"repro/internal/events"
	"repro/internal/wire"
)

// This file wires the events.Broker fan-out core into the ORB as a channel
// servant: CreateChannel exports a broker object whose dispatch table routes
// the two management operations (_subscribe, _unsubscribe) normally and
// treats EVERY other operation name as an event publish via the table's
// fallback handler — event names are open-ended, declared by the publisher's
// IDL, not by the broker. Publishers are ordinary generated stubs invoking
// oneway operations on the channel reference; the broker re-fans each
// request body out encode-once to all subscribers. See DESIGN.md §14.

// ChannelTypeID is the repository ID of the broker servant every channel
// exports.
const ChannelTypeID = "IDL:repro/events/Channel:1.0"

// Management operation names. The leading underscore keeps them out of the
// IDL operation namespace (identifiers cannot start with '_'), so they can
// never collide with a declared event.
const (
	opSubscribe   = "_subscribe"
	opUnsubscribe = "_unsubscribe"
)

// ChannelOptions tunes a channel's delivery defaults; per-subscription
// options (SubscribeOptions) override them. Connection batching follows the
// ORB's Coalesce* options.
type ChannelOptions struct {
	// QueueDepth is the default per-subscriber queue bound (64).
	QueueDepth int
	// Policy is the default full-queue policy (events.DropOldest).
	Policy events.DropPolicy
}

// SubscribeOptions tunes one subscription; zero fields inherit the
// channel's defaults.
type SubscribeOptions struct {
	QueueDepth int
	Policy     events.DropPolicy
}

// Channel is one event channel hosted by this ORB: a named broker servant
// plus its delivery core.
type Channel struct {
	orb    *ORB
	name   string
	ref    string // stringified channel reference (@chan|name|brokerRef)
	broker *events.Broker
	impl   *channelServant
}

// channelServant is the broker's exported identity — a unique pointer per
// channel, so the skeleton cache keys each channel separately.
type channelServant struct {
	ch *Channel
}

// CreateChannel exports a new event channel on this ORB and returns it. The
// returned channel's Ref is what publishers and subscribers exchange. The
// ORB must have been started.
func (o *ORB) CreateChannel(name string, opts ChannelOptions) (*Channel, error) {
	ch := &Channel{orb: o, name: name}
	ch.impl = &channelServant{ch: ch}
	ch.broker = events.NewBroker(events.Config{
		QueueDepth: opts.QueueDepth,
		Policy:     opts.Policy,
		Dial:       o.trans.Dial,
		Coalesce:   o.coalesceConfig(),
	})
	table := NewMethodTable(ChannelTypeID)
	table.Register(opSubscribe, ch.handleSubscribe)
	table.Register(opUnsubscribe, ch.handleUnsubscribe)
	table.SetFallback(ch.handlePublish)
	ref, err := o.Export(ch.impl, table)
	if err != nil {
		ch.broker.Close()
		return nil, err
	}
	ch.ref, err = FormatChannelRef(name, ref)
	if err != nil {
		o.Unexport(ch.impl)
		ch.broker.Close()
		return nil, err
	}
	return ch, nil
}

// Name returns the channel's name.
func (ch *Channel) Name() string { return ch.name }

// Ref returns the stringified channel reference publishers and subscribers
// use to find this channel.
func (ch *Channel) Ref() string { return ch.ref }

// Stats returns the channel's delivery ledger.
func (ch *Channel) Stats() events.Stats { return ch.broker.Stats() }

// SubscriberStats returns one subscription's ledger.
func (ch *Channel) SubscriberStats(id uint64) (events.Stats, bool) {
	return ch.broker.SubscriberStats(id)
}

// Subscribers returns the live subscription count.
func (ch *Channel) Subscribers() int { return ch.broker.Subscribers() }

// Close withdraws the channel: the servant is unexported (publishes start
// failing with unknown object) and the broker shuts down, discarding queued
// events and closing subscriber connections.
func (ch *Channel) Close() {
	ch.orb.Unexport(ch.impl)
	ch.broker.Close()
}

// handlePublish is the table's fallback: any operation that is not
// _subscribe/_unsubscribe is an event, fanned out under its operation name.
// The hot path re-uses the request frame's lease-backed body directly — the
// broker retain-shares it per subscriber, so nothing is copied or
// re-encoded no matter how many subscribers are attached.
func (ch *Channel) handlePublish(c *ServerCall) error {
	if m := c.Request(); m != nil {
		ch.broker.Publish(c.Method(), m)
		return nil
	}
	// Collocated publisher: no request frame exists, only the client
	// encoder's bytes. Wrap them in a caller-owned frame; Publish leases
	// the body (one copy) and each subscriber retains that lease, so the
	// encoder's buffer is not referenced once this returns.
	tmp := &wire.Message{Static: true, Body: c.RequestBody()}
	ch.broker.Publish(c.Method(), tmp)
	wire.FreeMessage(tmp)
	return nil
}

// handleSubscribe services _subscribe(name, consumerRef, queueDepth,
// policy) -> id. A consumer collocated with the broker's ORB is registered
// for direct dispatch (no connection); anything else gets the shared
// coalesced connection to its address space.
func (ch *Channel) handleSubscribe(c *ServerCall) error {
	name, err := c.GetString()
	if err != nil {
		return err
	}
	if name != ch.name {
		return fmt.Errorf("orb: channel %q does not serve %q", ch.name, name)
	}
	refStr, err := c.GetString()
	if err != nil {
		return err
	}
	depth, err := c.GetLong()
	if err != nil {
		return err
	}
	policy, err := c.GetLong()
	if err != nil {
		return err
	}
	if policy != int32(events.DropOldest) && policy != int32(events.CoalesceByKey) {
		return fmt.Errorf("orb: channel %q: unknown drop policy %d", ch.name, policy)
	}
	ref, err := ParseRef(refStr)
	if err != nil || ref.IsNil() {
		return fmt.Errorf("orb: channel %q: bad consumer reference %q", ch.name, refStr)
	}
	o := ch.orb
	so := events.SubOptions{QueueDepth: int(depth), Policy: events.DropPolicy(policy)}
	var id uint64
	if ref.Proto == o.trans.Name() && ref.Addr == o.Addr() {
		// Collocated consumer: deliver by dispatching straight into the
		// local servant on the subscriber's worker goroutine.
		id, err = ch.broker.SubscribeLocal(refStr, o.deliverLocal, so)
	} else {
		if ref.Proto != o.trans.Name() {
			return fmt.Errorf("orb: channel %q cannot reach consumer over %q (broker speaks %q)",
				ch.name, ref.Proto, o.trans.Name())
		}
		id, err = ch.broker.SubscribeRemote(refStr, ref.Addr, so)
	}
	if err != nil {
		return err
	}
	c.PutULongLong(id)
	return nil
}

// handleUnsubscribe services _unsubscribe(name, id) -> bool.
func (ch *Channel) handleUnsubscribe(c *ServerCall) error {
	name, err := c.GetString()
	if err != nil {
		return err
	}
	if name != ch.name {
		return fmt.Errorf("orb: channel %q does not serve %q", ch.name, name)
	}
	id, err := c.GetULongLong()
	if err != nil {
		return err
	}
	c.PutBool(ch.broker.Unsubscribe(id))
	return nil
}

// deliverLocal hands one event message to a servant exported by this ORB —
// the events.Deliver callback for collocated subscribers. The message is the
// broker worker's to free; dispatch borrows it for the duration of the call.
func (o *ORB) deliverLocal(m *wire.Message) error {
	s, err := o.lookupServant(m.TargetRef)
	if err != nil {
		return err
	}
	sc := o.getServerCall(m)
	defer putServerCall(sc)
	return o.dispatchMethod(s, m.Method, sc)
}

// Subscribe attaches a consumer to a channel: chanRef is the channel's
// stringified reference, consumerRef the stringified reference of an
// exported object whose dispatch table carries the channel's event
// operations (a generated consumer skeleton). It returns the subscription
// id for Unsubscribe. The management call is a normal two-way invocation on
// the broker servant, so it works collocated or remote.
func (o *ORB) Subscribe(chanRef, consumerRef string, opts SubscribeOptions) (uint64, error) {
	name, broker, err := ParseChannelRef(chanRef)
	if err != nil {
		return 0, err
	}
	c, err := o.NewCall(broker, opSubscribe)
	if err != nil {
		return 0, err
	}
	defer c.Release()
	c.PutString(name)
	c.PutString(consumerRef)
	c.PutLong(int32(opts.QueueDepth))
	c.PutLong(int32(opts.Policy))
	if err := c.Invoke(); err != nil {
		return 0, err
	}
	return c.GetULongLong()
}

// Unsubscribe detaches a subscription made with Subscribe. It reports
// whether the broker still knew the id.
func (o *ORB) Unsubscribe(chanRef string, id uint64) (bool, error) {
	name, broker, err := ParseChannelRef(chanRef)
	if err != nil {
		return false, err
	}
	c, err := o.NewCall(broker, opUnsubscribe)
	if err != nil {
		return false, err
	}
	defer c.Release()
	c.PutString(name)
	c.PutULongLong(id)
	if err := c.Invoke(); err != nil {
		return false, err
	}
	return c.GetBool()
}
