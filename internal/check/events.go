package check

import "repro/internal/idl"

// Event-operation legality: a channel event is fire-and-forget by
// construction — the broker fans the encoded request body out to
// subscribers and nothing ever flows back to the publisher. The grammar
// deliberately admits any operation shape inside a channel (the parser's
// job is to build a complete AST); this analyzer is the gate that makes
// ill-shaped events an error before any mapping generates bindings. The
// `oneway` keyword itself is redundant-but-legal on an event.

func init() {
	Register(&Analyzer{
		Name:     "event-op-illegal",
		Doc:      "channel events must be oneway-shaped: void result, in/incopy parameters only, no raises",
		Kind:     KindSpec,
		Severity: SevError,
		Run:      runEventOpIllegal,
	})
}

// forEachMainEvent visits every event of every channel declared in the main
// unit. Events are not interface operations, so forEachMainOp never sees
// them.
func forEachMainEvent(spec *idl.Spec, fn func(ch *idl.ChannelDecl, ev *idl.Operation)) {
	for _, ch := range spec.Channels() {
		if ch.FromInclude() {
			continue
		}
		for _, ev := range ch.Events {
			if ev != nil {
				fn(ch, ev)
			}
		}
	}
}

func runEventOpIllegal(pass *Pass) {
	forEachMainEvent(pass.Spec, func(ch *idl.ChannelDecl, ev *idl.Operation) {
		if ev.Result != nil && ev.Result.Unalias().Kind != idl.KindVoid {
			pass.Reportf(ev.DeclPos(), "event %q in channel %q must return void, not %s",
				ev.DeclName(), ch.DeclName(), ev.Result.Name())
		}
		for _, p := range ev.Params {
			if p.Mode == idl.ModeOut || p.Mode == idl.ModeInOut {
				pass.Reportf(p.Pos, "event %q in channel %q may not have %s parameter %q",
					ev.DeclName(), ch.DeclName(), p.Mode, p.Name)
			}
		}
		if len(ev.Raises) > 0 || len(ev.RaiseRefs) > 0 {
			pass.Reportf(ev.DeclPos(), "event %q in channel %q may not have a raises clause",
				ev.DeclName(), ch.DeclName())
		}
	})
}
