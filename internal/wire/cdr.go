package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"unicode/utf8"
)

// CDRProtocol is a compact binary protocol in the style of GIOP/IIOP: a
// fixed header carrying magic, version, byte order, message type and body
// length, followed by an aligned Common-Data-Representation body. It stands
// in for the "standard inter-ORB protocol ... designed for generality" that
// §2 of the paper contrasts with simple custom protocols; benchmark C2
// compares it against the text protocol.
//
// Frame layout (header fields after the flags byte use the byte order the
// flags announce, as in GIOP):
//
//	offset 0  4 bytes  magic "HRMI"
//	offset 4  1 byte   version (1)
//	offset 5  1 byte   message type
//	offset 6  1 byte   flags (bit0: little-endian, bit1: oneway, bit2: deadline)
//	offset 7  1 byte   reply status
//	offset 8  4 bytes  request ID
//	offset 12 4 bytes  payload length
//
// The payload holds the CDR-encoded meta values (for requests: an optional
// relative-deadline ULong when the deadline flag is set, then the target
// reference and method; for failure replies: the error message), padding to an
// 8-byte boundary, then the call body produced by the encoder. Re-basing
// the body on an 8-byte boundary preserves the alignment the encoder
// established.
type CDRProtocol struct {
	order  byteOrder
	name   string
	little bool
}

// byteOrder combines the read and append byte-order interfaces; both
// binary.BigEndian and binary.LittleEndian satisfy it.
type byteOrder interface {
	binary.ByteOrder
	binary.AppendByteOrder
}

// CDR is the big-endian CDRProtocol instance; CDRLittle the little-endian
// one.
var (
	CDR       Protocol = &CDRProtocol{order: binary.BigEndian, name: "cdr"}
	CDRLittle Protocol = &CDRProtocol{order: binary.LittleEndian, name: "cdr-le", little: true}
)

const (
	cdrMagic     = "HRMI"
	cdrVersion   = 1
	cdrHeaderLen = 16
	flagLittle   = 1 << 0
	flagOneway   = 1 << 1
	flagDeadline = 1 << 2
	cdrBodyAlign = 8
)

// Name implements Protocol.
func (p *CDRProtocol) Name() string { return p.name }

// WriteMessage implements Protocol. The whole frame is assembled in one
// pooled scratch buffer and written with a single Write call.
func (p *CDRProtocol) WriteMessage(w io.Writer, m *Message) error {
	bp := getFrame()
	b, err := p.AppendMessage(*bp, m)
	if err != nil {
		putFrame(bp)
		return err
	}
	*bp = b // recycle the grown buffer, not the original slice
	_, err = w.Write(b)
	putFrame(bp)
	return err
}

// AppendMessage implements Protocol. Alignment inside the frame is relative
// to the frame's own start, so frames append correctly at any dst offset.
func (p *CDRProtocol) AppendMessage(dst []byte, m *Message) ([]byte, error) {
	base := len(dst)
	b := append(dst, cdrZeros[:cdrHeaderLen]...)

	// Encode the meta strings directly into the frame after the header.
	// cdrHeaderLen is a multiple of cdrBodyAlign, so encoder alignment
	// (relative to frame start) still matches decoder alignment (relative
	// to payload start).
	meta := cdrEncoder{buf: b, base: base, order: p.order}
	switch m.Type {
	case MsgRequest:
		if m.Deadline > 0 {
			meta.PutULong(m.Deadline)
		}
		meta.PutString(m.TargetRef)
		meta.PutString(m.Method)
	case MsgReply:
		if m.Status != StatusOK {
			meta.PutString(m.ErrMsg)
		}
	case MsgClose, MsgGoAway, MsgPing, MsgPong:
		// no meta; ping/pong identity rides the fixed header's request ID
	case MsgHello:
		// no meta; the negotiation payload travels as the Body
	default:
		return dst, fmt.Errorf("wire: cannot encode message type %s", m.Type)
	}
	b = meta.buf
	if len(m.Body) > 0 {
		if rem := (len(b) - base - cdrHeaderLen) % cdrBodyAlign; rem != 0 {
			b = append(b, cdrZeros[:cdrBodyAlign-rem]...)
		}
	}
	payload := len(b) - base - cdrHeaderLen + len(m.Body)
	if payload > MaxBodyLen {
		return dst, fmt.Errorf("wire: message payload %d exceeds %d bytes", payload, MaxBodyLen)
	}
	b = append(b, m.Body...)

	hdr := b[base:]
	copy(hdr, cdrMagic)
	hdr[4] = cdrVersion
	hdr[5] = byte(m.Type)
	flags := byte(0)
	if p.little {
		flags |= flagLittle
	}
	if m.Oneway {
		flags |= flagOneway
	}
	if m.Type == MsgRequest && m.Deadline > 0 {
		flags |= flagDeadline
	}
	hdr[6] = flags
	hdr[7] = byte(m.Status)
	p.order.PutUint32(hdr[8:12], m.RequestID)
	p.order.PutUint32(hdr[12:16], uint32(payload))
	return b, nil
}

// ReadMessage implements Protocol. It accepts either byte order regardless
// of which instance reads, per the flags byte. The payload is read into a
// pooled lease buffer and Body views into it — no copy; the caller owns the
// returned message (FreeMessage when done).
func (p *CDRProtocol) ReadMessage(r *bufio.Reader) (*Message, error) {
	// Peek the fixed header out of the bufio buffer instead of copying it
	// into a fresh allocation; the buffer (4 KiB) always fits 16 bytes.
	hdr, err := r.Peek(cdrHeaderLen)
	if err != nil {
		if err == io.EOF && len(hdr) == 0 {
			return nil, ErrClosed
		}
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, fmt.Errorf("wire: reading cdr header: %w", err)
	}
	if string(hdr[:4]) != cdrMagic {
		return nil, fmt.Errorf("wire: bad magic %q", hdr[:4])
	}
	if hdr[4] != cdrVersion {
		return nil, fmt.Errorf("wire: unsupported cdr version %d", hdr[4])
	}
	order := byteOrder(binary.BigEndian)
	if hdr[6]&flagLittle != 0 {
		order = binary.LittleEndian
	}
	hasDeadline := hdr[6]&flagDeadline != 0
	m := NewMessage()
	m.Type = MsgType(hdr[5])
	m.Oneway = hdr[6]&flagOneway != 0
	m.Status = ReplyStatus(hdr[7])
	m.RequestID = order.Uint32(hdr[8:])
	payloadLen := order.Uint32(hdr[12:])
	r.Discard(cdrHeaderLen)
	if payloadLen > MaxBodyLen {
		FreeMessage(m)
		return nil, fmt.Errorf("wire: payload length %d exceeds %d", payloadLen, MaxBodyLen)
	}
	var payload []byte
	if payloadLen > 0 {
		lease := newLease(int(payloadLen))
		if _, err := io.ReadFull(r, lease.buf); err != nil {
			lease.release()
			FreeMessage(m)
			return nil, fmt.Errorf("wire: reading cdr payload: %w", err)
		}
		m.lease = lease
		payload = lease.buf
	}

	meta := &cdrDecoder{buf: payload, order: order}
	bad := func(what string, err error) (*Message, error) {
		FreeMessage(m)
		return nil, fmt.Errorf("wire: %s: %w", what, err)
	}
	switch m.Type {
	case MsgRequest:
		if hasDeadline {
			dl, err := meta.GetULong()
			if err != nil {
				return bad("request deadline", err)
			}
			if dl == 0 {
				return bad("request deadline", fmt.Errorf("deadline flag set with zero value"))
			}
			m.Deadline = dl
		}
		ref, err := meta.GetString()
		if err != nil {
			return bad("request target", err)
		}
		method, err := meta.GetString()
		if err != nil {
			return bad("request method", err)
		}
		m.TargetRef, m.Method = ref, method
	case MsgReply:
		if m.Status != StatusOK {
			msg, err := meta.GetString()
			if err != nil {
				return bad("reply error message", err)
			}
			m.ErrMsg = msg
		}
	case MsgClose, MsgGoAway, MsgPing, MsgPong:
		m.ReleaseBody()
		return m, nil
	case MsgHello:
		// No meta: the whole payload is the negotiation body, kept (with
		// its lease) for the negotiator to parse.
	default:
		// hdr views the bufio buffer and is stale after the payload read;
		// the type byte was already captured into m.
		t := byte(m.Type)
		FreeMessage(m)
		return nil, fmt.Errorf("wire: unknown message type %d", t)
	}
	if meta.off < len(payload) {
		body := meta.off
		if rem := body % cdrBodyAlign; rem != 0 {
			body += cdrBodyAlign - rem
		}
		if body > len(payload) {
			body = len(payload)
		}
		m.Body = payload[body:]
	} else {
		// Meta consumed the whole payload: nothing for Body to view, so
		// give the buffer back now rather than when the call completes.
		m.ReleaseBody()
	}
	return m, nil
}

// NewEncoder implements Protocol.
func (p *CDRProtocol) NewEncoder() Encoder { return &cdrEncoder{order: p.order} }

// NewDecoder implements Protocol.
func (p *CDRProtocol) NewDecoder(body []byte) Decoder {
	return &cdrDecoder{buf: body, order: p.order}
}

// cdrEncoder writes aligned binary values. Alignment is relative to base
// (the frame's start inside buf; zero for standalone body encoders),
// preserved across framing by the 8-byte body re-base in AppendMessage.
type cdrEncoder struct {
	buf   []byte
	base  int
	order byteOrder
}

// cdrZeros supplies header and padding bytes without per-call allocation.
var cdrZeros [cdrHeaderLen]byte

func (e *cdrEncoder) align(n int) {
	if rem := (len(e.buf) - e.base) % n; rem != 0 {
		e.buf = append(e.buf, cdrZeros[:n-rem]...)
	}
}

func (e *cdrEncoder) PutBool(v bool) {
	if v {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}
func (e *cdrEncoder) PutOctet(v byte) { e.buf = append(e.buf, v) }
func (e *cdrEncoder) PutShort(v int16) {
	e.align(2)
	e.buf = e.order.AppendUint16(e.buf, uint16(v))
}
func (e *cdrEncoder) PutUShort(v uint16) {
	e.align(2)
	e.buf = e.order.AppendUint16(e.buf, v)
}
func (e *cdrEncoder) PutLong(v int32) {
	e.align(4)
	e.buf = e.order.AppendUint32(e.buf, uint32(v))
}
func (e *cdrEncoder) PutULong(v uint32) {
	e.align(4)
	e.buf = e.order.AppendUint32(e.buf, v)
}
func (e *cdrEncoder) PutLongLong(v int64) {
	e.align(8)
	e.buf = e.order.AppendUint64(e.buf, uint64(v))
}
func (e *cdrEncoder) PutULongLong(v uint64) {
	e.align(8)
	e.buf = e.order.AppendUint64(e.buf, v)
}
func (e *cdrEncoder) PutFloat(v float32) {
	e.align(4)
	e.buf = e.order.AppendUint32(e.buf, floatBits32(v))
}
func (e *cdrEncoder) PutDouble(v float64) {
	e.align(8)
	e.buf = e.order.AppendUint64(e.buf, floatBits64(v))
}
func (e *cdrEncoder) PutChar(v rune) {
	e.align(4)
	e.buf = e.order.AppendUint32(e.buf, uint32(v))
}

// PutString writes a ULong byte length (including the terminating NUL, as
// in classic CDR) followed by the bytes and a NUL.
func (e *cdrEncoder) PutString(v string) {
	e.PutULong(uint32(len(v) + 1))
	e.buf = append(e.buf, v...)
	e.buf = append(e.buf, 0)
}

// Begin/End are no-ops in CDR: composite boundaries are implied by the
// schema, exactly why a binary protocol is compact and a text protocol is
// debuggable.
func (e *cdrEncoder) Begin(string) {}
func (e *cdrEncoder) End()         {}

func (e *cdrEncoder) Bytes() []byte { return e.buf }

// Reset implements Encoder, keeping the buffer's capacity for the next call.
func (e *cdrEncoder) Reset() { e.buf = e.buf[:0] }

// cdrDecoder reads aligned binary values.
type cdrDecoder struct {
	buf   []byte
	off   int
	order byteOrder
}

func (d *cdrDecoder) align(n int) {
	if rem := d.off % n; rem != 0 {
		d.off += n - rem
	}
}

func (d *cdrDecoder) take(n int, what string) ([]byte, error) {
	if d.off+n > len(d.buf) {
		return nil, errTruncated(what, d.off)
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b, nil
}

func (d *cdrDecoder) GetBool() (bool, error) {
	b, err := d.take(1, "boolean")
	if err != nil {
		return false, err
	}
	switch b[0] {
	case 0:
		return false, nil
	case 1:
		return true, nil
	}
	return false, fmt.Errorf("wire: bad boolean byte %d", b[0])
}

func (d *cdrDecoder) GetOctet() (byte, error) {
	b, err := d.take(1, "octet")
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (d *cdrDecoder) GetShort() (int16, error) {
	d.align(2)
	b, err := d.take(2, "short")
	if err != nil {
		return 0, err
	}
	return int16(d.order.Uint16(b)), nil
}

func (d *cdrDecoder) GetUShort() (uint16, error) {
	d.align(2)
	b, err := d.take(2, "ushort")
	if err != nil {
		return 0, err
	}
	return d.order.Uint16(b), nil
}

func (d *cdrDecoder) GetLong() (int32, error) {
	d.align(4)
	b, err := d.take(4, "long")
	if err != nil {
		return 0, err
	}
	return int32(d.order.Uint32(b)), nil
}

func (d *cdrDecoder) GetULong() (uint32, error) {
	d.align(4)
	b, err := d.take(4, "ulong")
	if err != nil {
		return 0, err
	}
	return d.order.Uint32(b), nil
}

func (d *cdrDecoder) GetLongLong() (int64, error) {
	d.align(8)
	b, err := d.take(8, "longlong")
	if err != nil {
		return 0, err
	}
	return int64(d.order.Uint64(b)), nil
}

func (d *cdrDecoder) GetULongLong() (uint64, error) {
	d.align(8)
	b, err := d.take(8, "ulonglong")
	if err != nil {
		return 0, err
	}
	return d.order.Uint64(b), nil
}

func (d *cdrDecoder) GetFloat() (float32, error) {
	d.align(4)
	b, err := d.take(4, "float")
	if err != nil {
		return 0, err
	}
	return floatFrom32(d.order.Uint32(b)), nil
}

func (d *cdrDecoder) GetDouble() (float64, error) {
	d.align(8)
	b, err := d.take(8, "double")
	if err != nil {
		return 0, err
	}
	return floatFrom64(d.order.Uint64(b)), nil
}

func (d *cdrDecoder) GetChar() (rune, error) {
	d.align(4)
	b, err := d.take(4, "char")
	if err != nil {
		return 0, err
	}
	r := rune(d.order.Uint32(b))
	if !utf8.ValidRune(r) {
		return 0, fmt.Errorf("wire: invalid char code point %#x", uint32(r))
	}
	return r, nil
}

func (d *cdrDecoder) GetString() (string, error) {
	n, err := d.GetULong()
	if err != nil {
		return "", err
	}
	if n == 0 {
		return "", fmt.Errorf("wire: zero-length string encoding")
	}
	if n > MaxStringLen {
		return "", fmt.Errorf("wire: string length %d exceeds %d", n, MaxStringLen)
	}
	b, err := d.take(int(n), "string")
	if err != nil {
		return "", err
	}
	if b[n-1] != 0 {
		return "", fmt.Errorf("wire: string missing NUL terminator")
	}
	return string(b[:n-1]), nil
}

// BeginGet/EndGet are no-ops in CDR; BeginGet reports an empty tag.
func (d *cdrDecoder) BeginGet() (string, error) { return "", nil }
func (d *cdrDecoder) EndGet() error             { return nil }

// Reset implements Decoder, re-targeting the decoder at a new body.
func (d *cdrDecoder) Reset(body []byte) { d.buf, d.off = body, 0 }

func (d *cdrDecoder) Remaining() int {
	if d.off >= len(d.buf) {
		return 0
	}
	return len(d.buf) - d.off
}

// Float bit conversions, isolated for clarity.
func floatBits32(f float32) uint32 { return math.Float32bits(f) }
func floatFrom32(b uint32) float32 { return math.Float32frombits(b) }
func floatBits64(f float64) uint64 { return math.Float64bits(f) }
func floatFrom64(b uint64) float64 { return math.Float64frombits(b) }
