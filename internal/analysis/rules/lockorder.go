package rules

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis/orbvet"
	"repro/internal/check"
)

// lockorder mechanizes DESIGN §12's locking discipline across internal/orb
// and internal/transport. Mutexes are abstracted to type-level keys
// ("orb.ORB.mu", "transport.MuxConn.sendMu"); the rule then
//
//  1. builds per-function acquire summaries (which keys a function may
//     lock, transitively through static calls within the analyzed unit),
//  2. walks every function in straight-line order tracking the held set —
//     a `defer mu.Unlock()` keeps the lock held to the end, which is the
//     point — and records an ordering edge held→acquired for every
//     acquisition (direct or via a summarized callee) under a held lock,
//  3. rejects cycles in the resulting graph (the classic ABBA deadlock),
//     re-acquisition of the same mutex expression on one path (sync.Mutex
//     is not reentrant), and dial/sleep/recv-shaped I/O performed while any
//     lock is held.
//
// The one place the runtime dials under a lock on purpose — MuxPool.Get's
// single-flight redial — carries an //orbvet:ignore with its
// justification; that comment is the auditable record of the exception.
func init() {
	orbvet.Register(&orbvet.Analyzer{
		Name:     "lockorder",
		Doc:      "mutex-acquisition graph must be acyclic; no re-locking on one path; no dial/sleep/recv I/O while a lock is held",
		Severity: check.SevError,
		RunUnit:  lockorderRun,
	})
}

const (
	opNone = iota
	opLock
	opUnlock
)

// lockFn is one function's locking summary.
type lockFn struct {
	name     string
	decl     *ast.FuncDecl
	pkg      *orbvet.Package
	acquires map[string]bool // transitive type-level keys this fn may lock
	callees  map[string]bool // static callees, by full name
}

func lockorderRun(u *orbvet.UnitPass) {
	fns := map[string]*lockFn{}
	for _, pkg := range u.Pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				lf := &lockFn{
					name:     obj.FullName(),
					decl:     fd,
					pkg:      pkg,
					acquires: map[string]bool{},
					callees:  map[string]bool{},
				}
				eachCall(fd.Body, func(c *ast.CallExpr) {
					_, typeKey, op := mutexOp(pkg.Info, c)
					switch op {
					case opLock:
						if typeKey != "" {
							lf.acquires[typeKey] = true
						}
					case opNone:
						if cn := orbvet.CalleeName(pkg.Info, c); cn != "" {
							lf.callees[cn] = true
						}
					}
				})
				fns[lf.name] = lf
			}
		}
	}

	// Transitive closure of acquire sets over the unit's static call graph.
	for changed := true; changed; {
		changed = false
		for _, lf := range fns {
			for cn := range lf.callees {
				callee, ok := fns[cn]
				if !ok {
					continue
				}
				for k := range callee.acquires {
					if !lf.acquires[k] {
						lf.acquires[k] = true
						changed = true
					}
				}
			}
		}
	}

	g := &lockGraph{edges: map[string]map[string]lockEdge{}}
	names := make([]string, 0, len(fns))
	for n := range fns {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		lf := fns[n]
		walkSeq(lf.decl.Body.List, &lockVisitor{
			u:    u,
			pkg:  lf.pkg,
			fn:   lf,
			fns:  fns,
			g:    g,
			held: map[string]heldLock{},
		})
	}
	g.reportCycles(u)
}

// heldLock is one acquisition on the current path.
type heldLock struct {
	typeKey   string
	pos       token.Pos
	exclusive bool
}

type lockEdge struct {
	pos token.Pos
	fn  string
}

type lockGraph struct {
	edges map[string]map[string]lockEdge
}

func (g *lockGraph) add(from, to string, pos token.Pos, fn string) {
	if from == "" || to == "" || from == to {
		return
	}
	m := g.edges[from]
	if m == nil {
		m = map[string]lockEdge{}
		g.edges[from] = m
	}
	if _, ok := m[to]; !ok {
		m[to] = lockEdge{pos: pos, fn: fn}
	}
}

type lockVisitor struct {
	u    *orbvet.UnitPass
	pkg  *orbvet.Package
	fn   *lockFn
	fns  map[string]*lockFn
	g    *lockGraph
	held map[string]heldLock // instance key -> acquisition
}

func (v *lockVisitor) Fork() flowVisitor {
	c := &lockVisitor{u: v.u, pkg: v.pkg, fn: v.fn, fns: v.fns, g: v.g, held: map[string]heldLock{}}
	for k, h := range v.held {
		c.held[k] = h
	}
	return c
}

func (v *lockVisitor) Stmt(s ast.Stmt) {
	if _, ok := s.(*ast.DeferStmt); ok {
		// A deferred Unlock runs at return; for the walk the lock stays
		// held, which is exactly what makes `Lock; defer Unlock; dial()`
		// detectable. Deferred Locks do not exist in sane code.
		return
	}
	ast.Inspect(s, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // closures run later, on their own goroutine/path
		}
		c, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		v.call(c)
		return true
	})
}

func (v *lockVisitor) call(c *ast.CallExpr) {
	instKey, typeKey, op := mutexOp(v.pkg.Info, c)
	switch op {
	case opLock:
		excl := !strings.HasSuffix(orbvet.CalleeName(v.pkg.Info, c), "RLock")
		if prev, ok := v.held[instKey]; ok && (excl || prev.exclusive) {
			v.u.Reportf(c.Pos(), "%s re-locks %s while already holding it on this path — sync mutexes are not reentrant, this self-deadlocks", v.shortFn(), instKey)
		}
		for _, h := range v.held {
			v.g.add(h.typeKey, typeKey, c.Pos(), v.shortFn())
		}
		v.held[instKey] = heldLock{typeKey: typeKey, pos: c.Pos(), exclusive: excl}
	case opUnlock:
		delete(v.held, instKey)
	default:
		if len(v.held) == 0 {
			return
		}
		if desc := ioCallDesc(v.pkg.Info, c); desc != "" {
			v.u.Reportf(c.Pos(), "%s while %s holds %s — the lock is pinned for the full I/O latency, stalling every other acquirer", desc, v.shortFn(), v.heldNames())
		}
		cn := orbvet.CalleeName(v.pkg.Info, c)
		callee, ok := v.fns[cn]
		if !ok {
			return
		}
		for a := range callee.acquires {
			for _, h := range v.held {
				v.g.add(h.typeKey, a, c.Pos(), v.shortFn())
			}
		}
	}
}

func (v *lockVisitor) shortFn() string {
	return strings.TrimPrefix(v.fn.name, "repro/internal/")
}

func (v *lockVisitor) heldNames() string {
	keys := make([]string, 0, len(v.held))
	for k := range v.held {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, ", ")
}

// mutexOp classifies c as a Lock/Unlock on a sync.Mutex/RWMutex and derives
// its instance key (the receiver expression, for path-local reentrancy) and
// type-level key ("pkg.Type.field", for the cross-function graph). Local
// mutex variables get an empty type key: their instances cannot be
// correlated across functions, so they contribute no graph edges.
func mutexOp(info *types.Info, c *ast.CallExpr) (instKey, typeKey string, op int) {
	var kind int
	switch orbvet.CalleeName(info, c) {
	case "(*sync.Mutex).Lock", "(*sync.RWMutex).Lock", "(*sync.RWMutex).RLock":
		kind = opLock
	case "(*sync.Mutex).Unlock", "(*sync.RWMutex).Unlock", "(*sync.RWMutex).RUnlock":
		kind = opUnlock
	default:
		return "", "", opNone
	}
	sel, ok := orbvet.Unparen(c.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", "", opNone
	}
	mutexExpr := orbvet.Unparen(sel.X)
	instKey = exprKey(mutexExpr)
	switch e := mutexExpr.(type) {
	case *ast.SelectorExpr:
		if base := orbvet.NamedType(info.TypeOf(e.X)); base != "" {
			typeKey = shortType(base) + "." + e.Sel.Name
		}
	case *ast.Ident:
		t := orbvet.NamedType(info.TypeOf(e))
		if t != "sync.Mutex" && t != "sync.RWMutex" && t != "" {
			// Embedded mutex: t.Lock() on a struct that embeds sync.Mutex.
			typeKey = shortType(t) + ".Mutex"
			break
		}
		if obj := info.Uses[e]; obj != nil && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
			// Package-level mutex variable.
			typeKey = shortType(obj.Pkg().Path()) + "." + e.Name
		}
	}
	return instKey, typeKey, kind
}

// exprKey renders an ident/selector chain ("p.mu", "o.conn.mu") for use as
// a path-local instance key.
func exprKey(e ast.Expr) string {
	switch e := orbvet.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprKey(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprKey(e.X) + "[...]"
	case *ast.CallExpr:
		return exprKey(e.Fun) + "()"
	case *ast.StarExpr:
		return exprKey(e.X)
	}
	return "?"
}

// shortType trims the module prefix so diagnostics read "orb.ORB.mu"
// instead of "repro/internal/orb.ORB.mu".
func shortType(t string) string {
	return strings.TrimPrefix(t, "repro/internal/")
}

// ioCallDesc reports a human description when c is I/O that must not run
// under a lock: dialing, listening, sleeping, or a transport Recv (which
// blocks until a peer writes). Send is deliberately NOT in this set — the
// serialized-writer pattern (sendMu held across Send) is the multiplexer's
// design, not a defect.
func ioCallDesc(info *types.Info, c *ast.CallExpr) string {
	name := orbvet.CalleeName(info, c)
	switch {
	case name == "time.Sleep":
		return "time.Sleep"
	case strings.HasPrefix(name, "net.Dial"), strings.HasPrefix(name, "net.Listen"),
		strings.HasPrefix(name, "(*net.Dialer).Dial"):
		return name
	case strings.HasSuffix(name, ").Recv") && strings.Contains(name, "repro/internal/transport"):
		return "blocking " + strings.TrimPrefix(name, "(*repro/internal/") + " receive"
	}
	if name != "" {
		return ""
	}
	// Func-valued struct fields: p.Dial(addr) where Dial is `func(...)`.
	sel, ok := orbvet.Unparen(c.Fun).(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Dial" && sel.Sel.Name != "DialContext") {
		return ""
	}
	if t := info.TypeOf(c.Fun); t != nil {
		if _, ok := t.Underlying().(*types.Signature); ok {
			return "dial via " + exprKey(sel)
		}
	}
	return ""
}

// reportCycles DFSes the ordering graph and reports each distinct cycle
// once, at the position of the edge that closes it.
func (g *lockGraph) reportCycles(u *orbvet.UnitPass) {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := map[string]int{}
	var stack []string
	seen := map[string]bool{}

	var visit func(n string)
	visit = func(n string) {
		color[n] = grey
		stack = append(stack, n)
		tos := make([]string, 0, len(g.edges[n]))
		for to := range g.edges[n] {
			tos = append(tos, to)
		}
		sort.Strings(tos)
		for _, to := range tos {
			switch color[to] {
			case white:
				visit(to)
			case grey:
				// Back edge n->to closes a cycle to ... n.
				i := 0
				for j, s := range stack {
					if s == to {
						i = j
						break
					}
				}
				cycle := append(append([]string{}, stack[i:]...), to)
				key := canonicalCycle(cycle)
				if !seen[key] {
					seen[key] = true
					e := g.edges[n][to]
					u.Reportf(e.pos, "lock-order cycle: %s (edge %s -> %s added in %s) — opposite acquisition orders can deadlock", strings.Join(cycle, " -> "), n, to, e.fn)
				}
			}
		}
		stack = stack[:len(stack)-1]
		color[n] = black
	}
	nodes := make([]string, 0, len(g.edges))
	for n := range g.edges {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	for _, n := range nodes {
		if color[n] == white {
			visit(n)
		}
	}
}

// canonicalCycle produces a rotation-independent identity for a cycle
// [a b c a]: drop the closing repeat, rotate the smallest element first.
func canonicalCycle(cycle []string) string {
	c := cycle[:len(cycle)-1]
	min := 0
	for i := range c {
		if c[i] < c[min] {
			min = i
		}
	}
	rot := append(append([]string{}, c[min:]...), c[:min]...)
	return fmt.Sprint(rot)
}
