package wire

import (
	"fmt"
	"strconv"
	"strings"
)

// Protocol negotiation payload (§2: the ORB protocol is a customization
// axis — here the two ends *agree* on the axis settings instead of being
// configured in lockstep).
//
// The payload rides in a MsgHello frame's Body as one ASCII line:
//
//	HRMI/1 feat=5 codecs=cdr,text
//
// It is deliberately codec-independent: the hello is the frame that decides
// which codec and features the connection will use, so its own encoding
// cannot depend on that outcome. ASCII also keeps it debuggable through the
// telnet trick (§4.2) on the text protocol.

// HelloVersion is the negotiation protocol version this build speaks.
const HelloVersion = 1

// helloMagic leads every hello payload; a frame that carries anything else
// is malformed and the peer falls back to static configuration.
const helloMagic = "HRMI/"

// Feature is a bitset of optional wire features a peer supports. A feature
// is used on a connection only when both ends advertise it.
type Feature uint32

// Wire features negotiable via the hello frame.
const (
	// FeatureCoalesce: the peer accepts coalesced (batched) frames — many
	// frames per TCP segment with no alignment between segment and frame
	// boundaries. Every stream codec here technically tolerates that, but
	// legacy interactive peers (the telnet debugging trick) want one frame
	// per line-turnaround, so batching is negotiated.
	FeatureCoalesce Feature = 1 << iota
	// FeatureDeadline: the peer understands the request deadline header
	// (text `@<ms>` token, CDR flag bit 2). Without it the client keeps
	// deadlines local (timers still fire) but stamps no header.
	FeatureDeadline
	// FeatureCompactV3: reserved for the future compact-binary v3 codec.
	// Advertised by nobody yet; exists so a v3-speaking build can probe for
	// it without a new handshake revision.
	FeatureCompactV3
	// FeatureKeepalive: the peer understands MsgPing/MsgPong liveness
	// frames (answers pings, tolerates pongs). Without it the client
	// never emits a ping on the connection — a legacy CDR peer would
	// error the whole connection on the unknown type, and a legacy text
	// server would log an unknown verb.
	FeatureKeepalive
)

// knownFeatures masks the bits this build understands; unknown bits from a
// newer peer are ignored (and never echoed, so the intersection property
// holds from the newer peer's point of view too).
const knownFeatures = FeatureCoalesce | FeatureDeadline | FeatureCompactV3 | FeatureKeepalive

// String renders the set mnemonically for diagnostics.
func (f Feature) String() string {
	if f == 0 {
		return "none"
	}
	var parts []string
	if f&FeatureCoalesce != 0 {
		parts = append(parts, "coalesce")
	}
	if f&FeatureDeadline != 0 {
		parts = append(parts, "deadline")
	}
	if f&FeatureCompactV3 != 0 {
		parts = append(parts, "compact-v3")
	}
	if f&FeatureKeepalive != 0 {
		parts = append(parts, "keepalive")
	}
	if rest := f &^ knownFeatures; rest != 0 {
		parts = append(parts, fmt.Sprintf("unknown(%#x)", uint32(rest)))
	}
	return strings.Join(parts, "+")
}

// Hello is a negotiation offer or answer.
type Hello struct {
	// Version of the negotiation protocol. A server answering a newer
	// client replies with its own (lower) version; the connection then
	// speaks the older dialect.
	Version uint32
	// Features the sender supports (offer) or both ends share (answer).
	Features Feature
	// Codecs the sender can speak, in preference order ("cdr", "text").
	// The answer lists the intersection, preference order of the server.
	Codecs []string
}

// Encode renders the payload for a MsgHello body.
func (h Hello) Encode() []byte {
	b := make([]byte, 0, 48)
	b = append(b, helloMagic...)
	b = strconv.AppendUint(b, uint64(h.Version), 10)
	b = append(b, " feat="...)
	b = strconv.AppendUint(b, uint64(h.Features), 10)
	if len(h.Codecs) > 0 {
		b = append(b, " codecs="...)
		for i, c := range h.Codecs {
			if i > 0 {
				b = append(b, ',')
			}
			b = append(b, c...)
		}
	}
	return b
}

// ParseHello decodes a MsgHello body. Any malformation is an error: the
// caller falls back to static configuration rather than guessing.
func ParseHello(body []byte) (Hello, error) {
	var h Hello
	s := string(body)
	if !strings.HasPrefix(s, helloMagic) {
		return h, fmt.Errorf("wire: hello: bad magic %.8q", s)
	}
	fields := strings.Fields(s[len(helloMagic):])
	if len(fields) == 0 {
		return h, fmt.Errorf("wire: hello: missing version")
	}
	v, err := strconv.ParseUint(fields[0], 10, 32)
	if err != nil || v == 0 {
		return h, fmt.Errorf("wire: hello: bad version %q", fields[0])
	}
	h.Version = uint32(v)
	for _, f := range fields[1:] {
		key, val, ok := strings.Cut(f, "=")
		if !ok {
			return h, fmt.Errorf("wire: hello: bad field %q", f)
		}
		switch key {
		case "feat":
			n, err := strconv.ParseUint(val, 10, 32)
			if err != nil {
				return h, fmt.Errorf("wire: hello: bad feat %q", val)
			}
			h.Features = Feature(n)
		case "codecs":
			if val != "" {
				h.Codecs = strings.Split(val, ",")
			}
		default:
			// Unknown keys from newer peers are skipped, not rejected:
			// adding a field must not break the installed base.
		}
	}
	return h, nil
}

// Intersect computes the server's answer to a client offer: the shared
// feature set (masked to what this build knows), the lower version, and the
// codec list filtered to what both ends speak, in the answerer's preference
// order.
func (h Hello) Intersect(offer Hello) Hello {
	ans := Hello{
		Version:  h.Version,
		Features: h.Features & offer.Features & knownFeatures,
	}
	if offer.Version < ans.Version {
		ans.Version = offer.Version
	}
	for _, c := range h.Codecs {
		for _, oc := range offer.Codecs {
			if c == oc {
				ans.Codecs = append(ans.Codecs, c)
				break
			}
		}
	}
	return ans
}

// HasCodec reports whether name is in the codec list.
func (h Hello) HasCodec(name string) bool {
	for _, c := range h.Codecs {
		if c == name {
			return true
		}
	}
	return false
}
