package wire

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"unicode/utf8"
)

// TextProtocol is HeidiRMI's original wire protocol: every message is a
// single newline-terminated ASCII line (§3.1). The format is deliberately
// human-typable — §4.2: "Utilizing such a text-based protocol permitted a
// 'human' client to telnet into the bootstrap port of a Heidi application
// and type in simple HeidiRMI requests to debug the system."
//
// Message grammar (one line each):
//
//	call <id> <ref> <method> <body tokens...>     two-way request
//	send <id> <ref> <method> <body tokens...>     oneway request
//	ok <id> <body tokens...>                      successful reply
//	err <id> <status> <quoted message>            failure reply
//	close                                         connection close
//
// Body tokens: integers and floats in decimal, booleans as T/F, strings
// Go-quoted, composite values bracketed by {tag ... }.
type TextProtocol struct{}

// Text is the shared TextProtocol instance.
var Text Protocol = TextProtocol{}

// Name implements Protocol.
func (TextProtocol) Name() string { return "text" }

// WriteMessage implements Protocol. The frame is assembled in a pooled
// scratch buffer and written in one call.
func (TextProtocol) WriteMessage(w io.Writer, m *Message) error {
	bp := getFrame()
	defer putFrame(bp)
	b := *bp
	switch m.Type {
	case MsgRequest:
		if m.Oneway {
			b = append(b, "send "...)
		} else {
			b = append(b, "call "...)
		}
		b = strconv.AppendUint(b, uint64(m.RequestID), 10)
		b = append(b, ' ')
		b = append(b, m.TargetRef...)
		b = append(b, ' ')
		b = append(b, m.Method...)
	case MsgReply:
		if m.Status == StatusOK {
			b = append(b, "ok "...)
			b = strconv.AppendUint(b, uint64(m.RequestID), 10)
		} else {
			b = append(b, "err "...)
			b = strconv.AppendUint(b, uint64(m.RequestID), 10)
			b = append(b, ' ')
			b = strconv.AppendInt(b, int64(m.Status), 10)
			b = append(b, ' ')
			b = strconv.AppendQuote(b, m.ErrMsg)
		}
	case MsgClose:
		b = append(b, "close"...)
	default:
		return fmt.Errorf("wire: cannot encode message type %s", m.Type)
	}
	if len(m.Body) > 0 {
		b = append(b, ' ')
		b = append(b, m.Body...)
	}
	b = append(b, '\n')
	*bp = b
	_, err := w.Write(b)
	return err
}

// ReadMessage implements Protocol.
func (TextProtocol) ReadMessage(r *bufio.Reader) (*Message, error) {
	line, err := r.ReadString('\n')
	if err != nil {
		if err == io.EOF && line == "" {
			return nil, ErrClosed
		}
		return nil, fmt.Errorf("wire: reading text message: %w", err)
	}
	line = strings.TrimRight(line, "\r\n")
	if len(line) > MaxBodyLen {
		return nil, fmt.Errorf("wire: text message exceeds %d bytes", MaxBodyLen)
	}
	verb, rest := nextField(line)
	m := &Message{}
	switch verb {
	case "close":
		m.Type = MsgClose
		return m, nil
	case "call", "send":
		m.Type = MsgRequest
		m.Oneway = verb == "send"
		id, rest2 := nextField(rest)
		ref, rest3 := nextField(rest2)
		method, body := nextField(rest3)
		n, err := strconv.ParseUint(id, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("wire: bad request id %q", id)
		}
		if ref == "" || method == "" {
			return nil, fmt.Errorf("wire: request missing target or method: %q", line)
		}
		m.RequestID = uint32(n)
		m.TargetRef = ref
		m.Method = method
		m.Body = []byte(body)
		return m, nil
	case "ok":
		m.Type = MsgReply
		m.Status = StatusOK
		id, body := nextField(rest)
		n, err := strconv.ParseUint(id, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("wire: bad reply id %q", id)
		}
		m.RequestID = uint32(n)
		m.Body = []byte(body)
		return m, nil
	case "err":
		m.Type = MsgReply
		id, rest2 := nextField(rest)
		status, rest3 := nextField(rest2)
		n, err := strconv.ParseUint(id, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("wire: bad reply id %q", id)
		}
		sc, err := strconv.Atoi(status)
		if err != nil || sc == int(StatusOK) {
			return nil, fmt.Errorf("wire: bad error status %q", status)
		}
		msg := strings.TrimSpace(rest3)
		if unq, err := strconv.Unquote(msg); err == nil {
			msg = unq
		}
		m.RequestID = uint32(n)
		m.Status = ReplyStatus(sc)
		m.ErrMsg = msg
		return m, nil
	default:
		return nil, fmt.Errorf("wire: unknown text verb %q", verb)
	}
}

// nextField splits off the next space-delimited field.
func nextField(s string) (field, rest string) {
	s = strings.TrimLeft(s, " ")
	i := strings.IndexByte(s, ' ')
	if i < 0 {
		return s, ""
	}
	return s[:i], s[i+1:]
}

// NewEncoder implements Protocol.
func (TextProtocol) NewEncoder() Encoder { return &textEncoder{} }

// NewDecoder implements Protocol.
func (TextProtocol) NewDecoder(body []byte) Decoder {
	return &textDecoder{rest: string(body)}
}

// textEncoder renders body values as space-separated tokens, appended
// directly to a byte buffer (no intermediate token strings, and Bytes hands
// the buffer out without copying).
type textEncoder struct {
	buf []byte
}

// sep writes the token separator before every token but the first.
func (e *textEncoder) sep() {
	if len(e.buf) > 0 {
		e.buf = append(e.buf, ' ')
	}
}

func (e *textEncoder) PutBool(v bool) {
	e.sep()
	if v {
		e.buf = append(e.buf, 'T')
	} else {
		e.buf = append(e.buf, 'F')
	}
}
func (e *textEncoder) PutOctet(v byte) {
	e.sep()
	e.buf = strconv.AppendUint(e.buf, uint64(v), 10)
}
func (e *textEncoder) PutShort(v int16) {
	e.sep()
	e.buf = strconv.AppendInt(e.buf, int64(v), 10)
}
func (e *textEncoder) PutUShort(v uint16) {
	e.sep()
	e.buf = strconv.AppendUint(e.buf, uint64(v), 10)
}
func (e *textEncoder) PutLong(v int32) {
	e.sep()
	e.buf = strconv.AppendInt(e.buf, int64(v), 10)
}
func (e *textEncoder) PutULong(v uint32) {
	e.sep()
	e.buf = strconv.AppendUint(e.buf, uint64(v), 10)
}
func (e *textEncoder) PutLongLong(v int64) {
	e.sep()
	e.buf = strconv.AppendInt(e.buf, v, 10)
}
func (e *textEncoder) PutULongLong(v uint64) {
	e.sep()
	e.buf = strconv.AppendUint(e.buf, v, 10)
}
func (e *textEncoder) PutFloat(v float32) {
	e.sep()
	e.buf = strconv.AppendFloat(e.buf, float64(v), 'g', -1, 32)
}
func (e *textEncoder) PutDouble(v float64) {
	e.sep()
	e.buf = strconv.AppendFloat(e.buf, v, 'g', -1, 64)
}
func (e *textEncoder) PutChar(v rune) {
	e.sep()
	e.buf = strconv.AppendQuoteRune(e.buf, v)
}
func (e *textEncoder) PutString(v string) {
	e.sep()
	e.buf = strconv.AppendQuote(e.buf, v)
}
func (e *textEncoder) Begin(tag string) {
	e.sep()
	e.buf = append(e.buf, '{')
	e.buf = append(e.buf, tag...)
}
func (e *textEncoder) End() {
	e.sep()
	e.buf = append(e.buf, '}')
}
func (e *textEncoder) Bytes() []byte { return e.buf }

// textDecoder tokenizes an encoded body.
type textDecoder struct {
	rest string
	off  int
}

func (d *textDecoder) next() (string, error) {
	s := strings.TrimLeft(d.rest, " ")
	d.off += len(d.rest) - len(s)
	if s == "" {
		return "", errTruncated("token", d.off)
	}
	// Quoted tokens may contain spaces.
	if s[0] == '"' || s[0] == '\'' {
		prefix, err := quotedPrefix(s)
		if err != nil {
			return "", fmt.Errorf("wire: bad quoted token at offset %d: %w", d.off, err)
		}
		d.rest = s[len(prefix):]
		d.off += len(prefix)
		return prefix, nil
	}
	i := strings.IndexByte(s, ' ')
	if i < 0 {
		d.rest = ""
		d.off += len(s)
		return s, nil
	}
	d.rest = s[i:]
	d.off += i
	return s[:i], nil
}

// quotedPrefix returns the leading quoted token of s (Go string or rune
// quoting).
func quotedPrefix(s string) (string, error) {
	if s[0] == '"' {
		return strconv.QuotedPrefix(s)
	}
	// Rune literal: find the closing quote honouring backslash escapes.
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '\'':
			return s[:i+1], nil
		}
	}
	return "", fmt.Errorf("unterminated rune literal")
}

func (d *textDecoder) GetBool() (bool, error) {
	t, err := d.next()
	if err != nil {
		return false, err
	}
	switch t {
	case "T":
		return true, nil
	case "F":
		return false, nil
	}
	return false, fmt.Errorf("wire: bad boolean token %q", t)
}

func (d *textDecoder) int(bits int) (int64, error) {
	t, err := d.next()
	if err != nil {
		return 0, err
	}
	n, err := strconv.ParseInt(t, 10, bits)
	if err != nil {
		return 0, fmt.Errorf("wire: bad integer token %q", t)
	}
	return n, nil
}

func (d *textDecoder) uint(bits int) (uint64, error) {
	t, err := d.next()
	if err != nil {
		return 0, err
	}
	n, err := strconv.ParseUint(t, 10, bits)
	if err != nil {
		return 0, fmt.Errorf("wire: bad unsigned token %q", t)
	}
	return n, nil
}

func (d *textDecoder) GetOctet() (byte, error) {
	n, err := d.uint(8)
	return byte(n), err
}
func (d *textDecoder) GetShort() (int16, error) {
	n, err := d.int(16)
	return int16(n), err
}
func (d *textDecoder) GetUShort() (uint16, error) {
	n, err := d.uint(16)
	return uint16(n), err
}
func (d *textDecoder) GetLong() (int32, error) {
	n, err := d.int(32)
	return int32(n), err
}
func (d *textDecoder) GetULong() (uint32, error) {
	n, err := d.uint(32)
	return uint32(n), err
}
func (d *textDecoder) GetLongLong() (int64, error) { return d.int(64) }
func (d *textDecoder) GetULongLong() (uint64, error) {
	return d.uint(64)
}

func (d *textDecoder) GetFloat() (float32, error) {
	t, err := d.next()
	if err != nil {
		return 0, err
	}
	f, err := strconv.ParseFloat(t, 32)
	if err != nil {
		return 0, fmt.Errorf("wire: bad float token %q", t)
	}
	return float32(f), nil
}

func (d *textDecoder) GetDouble() (float64, error) {
	t, err := d.next()
	if err != nil {
		return 0, err
	}
	f, err := strconv.ParseFloat(t, 64)
	if err != nil {
		return 0, fmt.Errorf("wire: bad double token %q", t)
	}
	return f, nil
}

func (d *textDecoder) GetChar() (rune, error) {
	t, err := d.next()
	if err != nil {
		return 0, err
	}
	s, err := strconv.Unquote(t)
	if err != nil || s == "" {
		return 0, fmt.Errorf("wire: bad char token %q", t)
	}
	r, _ := utf8.DecodeRuneInString(s)
	return r, nil
}

func (d *textDecoder) GetString() (string, error) {
	t, err := d.next()
	if err != nil {
		return "", err
	}
	s, err := strconv.Unquote(t)
	if err != nil {
		return "", fmt.Errorf("wire: bad string token %q", t)
	}
	if len(s) > MaxStringLen {
		return "", fmt.Errorf("wire: string exceeds %d bytes", MaxStringLen)
	}
	return s, nil
}

func (d *textDecoder) BeginGet() (string, error) {
	t, err := d.next()
	if err != nil {
		return "", err
	}
	if !strings.HasPrefix(t, "{") {
		return "", fmt.Errorf("wire: expected composite begin, got %q", t)
	}
	return t[1:], nil
}

func (d *textDecoder) EndGet() error {
	t, err := d.next()
	if err != nil {
		return err
	}
	if t != "}" {
		return fmt.Errorf("wire: expected composite end, got %q", t)
	}
	return nil
}

func (d *textDecoder) Remaining() int {
	return len(strings.TrimLeft(d.rest, " "))
}
