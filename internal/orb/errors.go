package orb

import (
	"errors"
	"fmt"

	"repro/internal/transport"
	"repro/internal/wire"
)

// Sentinel errors surfaced by the runtime.
var (
	// ErrUnknownMethod is reported when dispatch falls off the end of
	// the skeleton inheritance chain without a match (Fig. 5).
	ErrUnknownMethod = errors.New("orb: unknown method")
	// ErrUnknownObject is reported when a request names an object
	// identifier that is not registered in the address space.
	ErrUnknownObject = errors.New("orb: unknown object")
	// ErrNotExportable is reported when a value passed as an object
	// reference is neither a stub, an exported servant, nor exportable.
	ErrNotExportable = errors.New("orb: value is not a stub and has no skeleton factory")
	// ErrShutdown is reported for operations on a stopped ORB, including
	// invocations whose connection pool has been closed.
	ErrShutdown = errors.New("orb: shut down")
	// ErrCircuitOpen is reported for invocations failed fast by a
	// tripped per-endpoint circuit breaker (Options.Breaker); it aliases
	// the transport sentinel so callers need not import transport.
	ErrCircuitOpen = transport.ErrCircuitOpen
	// ErrDeadlineExceeded is reported when a call's deadline expires:
	// locally (the reply did not arrive in time — the outcome is ambiguous
	// and retried only for idempotent calls) or remotely (the server
	// observed the propagated deadline pass and shed the work — fatal,
	// since the caller's patience is spent and retrying cannot help).
	// Match with errors.Is; both shapes satisfy it.
	ErrDeadlineExceeded = errors.New("orb: deadline exceeded")
	// ErrOverloaded is reported when the server's admission control shed
	// the request without dispatching it. Nothing ran, so the failure is
	// safe: the RetryPolicy re-sends it after backoff (and the Rebind hook
	// may route it to another endpoint).
	ErrOverloaded = errors.New("orb: server overloaded")
)

// UserError marks generated exception types (IDL raises clauses): a handler
// returning a UserError produces a user-exception reply rather than a
// system error.
type UserError interface {
	error
	// HdUserError distinguishes IDL user exceptions from system errors.
	HdUserError()
}

// RemoteError is the client-side image of a non-OK reply.
type RemoteError struct {
	Status wire.ReplyStatus
	Msg    string
}

// Error implements the error interface.
func (e *RemoteError) Error() string {
	if e.Msg == "" {
		return fmt.Sprintf("orb: remote error (%s)", e.Status)
	}
	return fmt.Sprintf("orb: remote error (%s): %s", e.Status, e.Msg)
}

// Is maps reply statuses onto the package sentinels so callers can use
// errors.Is(err, orb.ErrUnknownMethod) across the wire.
func (e *RemoteError) Is(target error) bool {
	switch target {
	case ErrUnknownMethod:
		return e.Status == wire.StatusUnknownMethod
	case ErrUnknownObject:
		return e.Status == wire.StatusUnknownObject
	case ErrDeadlineExceeded:
		return e.Status == wire.StatusDeadlineExceeded
	case ErrOverloaded:
		return e.Status == wire.StatusOverloaded
	}
	return false
}
