// Package core is the template-driven IDL compiler of §4 of "Customizing
// IDL Mappings and ORB Protocols" — the paper's primary contribution,
// assembled from the repository's substrates:
//
//	IDL source ──(internal/idl)──▶ AST ──(internal/est)──▶ EST
//	       EST + template + map functions ──(internal/jeeves)──▶ files
//
// Two modes reproduce Fig. 6:
//
//   - Compile: the one-shot pipeline (parse, build EST, run template).
//   - The two-stage pipeline of §4.1: EmitScript produces a program that
//     rebuilds the EST (the paper's generated Perl, Fig. 8);
//     CompileFromScript evaluates it and runs the template — re-generation
//     without re-parsing the IDL.
//
// The compiler knows nothing about any particular mapping: mappings are
// data (templates + map functions) registered in internal/mappings, which
// is exactly the decoupling the paper argues for.
package core

import (
	"fmt"
	"go/format"
	"sort"
	"strings"

	"repro/internal/est"
	"repro/internal/idl"
	"repro/internal/jeeves"
	"repro/internal/mappings"
)

// Result is the outcome of one compilation: generated files keyed by name,
// with Order preserving generation order.
type Result struct {
	Files map[string]string
	Order []string
}

// File returns a generated file's contents ("" when absent).
func (r *Result) File(name string) string { return r.Files[name] }

// TotalBytes sums the size of all generated files.
func (r *Result) TotalBytes() int {
	n := 0
	for _, f := range r.Files {
		n += len(f)
	}
	return n
}

// Option adjusts a compilation.
type Option func(*config)

type config struct {
	props    map[string]string
	resolver idl.Resolver
}

// WithProp sets a root EST property before the template runs; templates
// and map functions can read it (e.g. "goPackage" for the Go mapping).
func WithProp(key, value string) Option {
	return func(c *config) { c.props[key] = value }
}

// WithResolver enables #include processing: included declarations resolve
// but generate no code (multi-file compilation, the paper's "external
// declaration" scenario).
func WithResolver(r idl.Resolver) Option {
	return func(c *config) { c.resolver = r }
}

func newConfig(opts []Option) *config {
	cfg := &config{props: map[string]string{}}
	for _, o := range opts {
		o(cfg)
	}
	return cfg
}

// Compile runs the one-shot pipeline: parse the IDL source (file names the
// translation unit for diagnostics and the ${basename} property), build
// the EST, and execute the named mapping's templates against it.
func Compile(file, src, mapping string, opts ...Option) (*Result, error) {
	cfg := newConfig(opts)
	spec, err := idl.ParseWithIncludes(file, src, cfg.resolver)
	if err != nil {
		return nil, fmt.Errorf("core: parsing %s: %w", file, err)
	}
	return generateCfg(est.Build(spec), mapping, cfg)
}

// BuildEST parses IDL and returns its EST, for tooling (idlc --dump-est).
func BuildEST(file, src string, opts ...Option) (*est.Node, error) {
	cfg := newConfig(opts)
	spec, err := idl.ParseWithIncludes(file, src, cfg.resolver)
	if err != nil {
		return nil, fmt.Errorf("core: parsing %s: %w", file, err)
	}
	return est.Build(spec), nil
}

// EmitScript runs stage one of the two-stage pipeline (Fig. 6/Fig. 8): it
// parses the IDL and emits the program that rebuilds the EST.
func EmitScript(file, src string, opts ...Option) (string, error) {
	root, err := BuildEST(file, src, opts...)
	if err != nil {
		return "", err
	}
	return est.EmitScript(root), nil
}

// CompileFromScript runs stage two: evaluate an EST script (regeneration
// without the IDL front end, §4.1) and execute the mapping against the
// rebuilt tree.
func CompileFromScript(script, mapping string, opts ...Option) (*Result, error) {
	root, err := est.EvalScript(script)
	if err != nil {
		return nil, fmt.Errorf("core: evaluating EST script: %w", err)
	}
	return generateCfg(root, mapping, newConfig(opts))
}

// CompileEST runs the named mapping against an already-built EST.
func CompileEST(root *est.Node, mapping string, opts ...Option) (*Result, error) {
	return generateCfg(root, mapping, newConfig(opts))
}

func generateCfg(root *est.Node, mapping string, cfg *config) (*Result, error) {
	for k, v := range cfg.props {
		root.SetProp(k, v)
	}
	m, err := mappings.Lookup(mapping)
	if err != nil {
		return nil, err
	}
	if m.Name == "go" {
		mappings.EnsureGoPackage(root, cfg.props["goPackage"])
	}
	out, err := m.Generate(root)
	if err != nil {
		return nil, fmt.Errorf("core: mapping %s: %w", mapping, err)
	}
	res := &Result{Files: out.All(), Order: out.Files()}
	for name, content := range res.Files {
		if strings.HasSuffix(name, ".go") {
			pretty, err := format.Source([]byte(content))
			if err != nil {
				return nil, fmt.Errorf("core: generated %s does not parse as Go: %w", name, err)
			}
			res.Files[name] = string(pretty)
		}
	}
	return res, nil
}

// Mappings lists the registered mapping names, sorted.
func Mappings() []string {
	var names []string
	for _, m := range mappings.List() {
		names = append(names, m.Name)
	}
	sort.Strings(names)
	return names
}

// CompileTemplate compiles a user-supplied template (not a registered
// mapping) and executes it with the given map functions — the fully
// customizable path the paper's architecture enables: write a template,
// get a new mapping, no compiler changes.
func CompileTemplate(root *est.Node, name, template string, funcs jeeves.FuncMap) (*Result, error) {
	prog, err := jeeves.CompileTemplate(name, template)
	if err != nil {
		return nil, err
	}
	out, err := prog.ExecuteToMemory(root, funcs)
	if err != nil {
		return nil, err
	}
	return &Result{Files: out.All(), Order: out.Files()}, nil
}
