// Package idl implements a front-end for the OMG Interface Definition
// Language (IDL) as used by the template-driven compiler described in
// "Customizing IDL Mappings and ORB Protocols" (Welling & Ott, Middleware
// 2000). It provides a lexer, a recursive-descent parser producing a typed
// abstract syntax tree, and a semantic resolver that computes scoped names,
// repository IDs and inheritance closures.
//
// In addition to the classic IDL subset (modules, interfaces, operations,
// attributes, structs, unions, enums, typedefs, sequences, arrays, constants
// and exceptions) the package implements the two syntax extensions the paper
// introduces for HeidiRMI:
//
//   - the "incopy" parameter-passing mode (pass-by-value for object
//     references, identical to "in" for primitive types), and
//   - default parameter values ("void p(in long l = 0)").
package idl

import "fmt"

// TokenKind identifies the lexical class of a token.
type TokenKind int

// Token kinds. Keywords get their own kinds so that the parser never
// compares identifier spellings.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokIntLit
	TokFloatLit
	TokCharLit
	TokStringLit

	// Punctuation.
	TokSemi       // ;
	TokLBrace     // {
	TokRBrace     // }
	TokLParen     // (
	TokRParen     // )
	TokLBracket   // [
	TokRBracket   // ]
	TokLAngle     // <
	TokRAngle     // >
	TokComma      // ,
	TokColon      // :
	TokScope      // ::
	TokEquals     // =
	TokPlus       // +
	TokMinus      // -
	TokStar       // *
	TokSlash      // /
	TokPercent    // %
	TokPipe       // |
	TokCaret      // ^
	TokAmp        // &
	TokTilde      // ~
	TokShiftLeft  // <<
	TokShiftRight // >>

	// Keywords.
	TokModule
	TokInterface
	TokStruct
	TokUnion
	TokSwitch
	TokCase
	TokDefault
	TokEnum
	TokTypedef
	TokConst
	TokException
	TokRaises
	TokContext
	TokOneway
	TokAttribute
	TokReadonly
	TokIn
	TokOut
	TokInout
	TokIncopy // paper extension: pass-by-value qualifier
	TokVoid
	TokBoolean
	TokChar
	TokWChar
	TokOctet
	TokShort
	TokLong
	TokFloat
	TokDouble
	TokUnsigned
	TokString
	TokWString
	TokSequence
	TokAny
	TokObject
	TokTrue
	TokFalse
	TokChannel
	TokEvent
)

var tokenNames = map[TokenKind]string{
	TokEOF:        "end of file",
	TokIdent:      "identifier",
	TokIntLit:     "integer literal",
	TokFloatLit:   "floating-point literal",
	TokCharLit:    "character literal",
	TokStringLit:  "string literal",
	TokSemi:       "';'",
	TokLBrace:     "'{'",
	TokRBrace:     "'}'",
	TokLParen:     "'('",
	TokRParen:     "')'",
	TokLBracket:   "'['",
	TokRBracket:   "']'",
	TokLAngle:     "'<'",
	TokRAngle:     "'>'",
	TokComma:      "','",
	TokColon:      "':'",
	TokScope:      "'::'",
	TokEquals:     "'='",
	TokPlus:       "'+'",
	TokMinus:      "'-'",
	TokStar:       "'*'",
	TokSlash:      "'/'",
	TokPercent:    "'%'",
	TokPipe:       "'|'",
	TokCaret:      "'^'",
	TokAmp:        "'&'",
	TokTilde:      "'~'",
	TokShiftLeft:  "'<<'",
	TokShiftRight: "'>>'",
	TokModule:     "'module'",
	TokInterface:  "'interface'",
	TokStruct:     "'struct'",
	TokUnion:      "'union'",
	TokSwitch:     "'switch'",
	TokCase:       "'case'",
	TokDefault:    "'default'",
	TokEnum:       "'enum'",
	TokTypedef:    "'typedef'",
	TokConst:      "'const'",
	TokException:  "'exception'",
	TokRaises:     "'raises'",
	TokContext:    "'context'",
	TokOneway:     "'oneway'",
	TokAttribute:  "'attribute'",
	TokReadonly:   "'readonly'",
	TokIn:         "'in'",
	TokOut:        "'out'",
	TokInout:      "'inout'",
	TokIncopy:     "'incopy'",
	TokVoid:       "'void'",
	TokBoolean:    "'boolean'",
	TokChar:       "'char'",
	TokWChar:      "'wchar'",
	TokOctet:      "'octet'",
	TokShort:      "'short'",
	TokLong:       "'long'",
	TokFloat:      "'float'",
	TokDouble:     "'double'",
	TokUnsigned:   "'unsigned'",
	TokString:     "'string'",
	TokWString:    "'wstring'",
	TokSequence:   "'sequence'",
	TokAny:        "'any'",
	TokObject:     "'Object'",
	TokTrue:       "'TRUE'",
	TokFalse:      "'FALSE'",
	TokChannel:    "'channel'",
	TokEvent:      "'event'",
}

// String returns a human-readable description of the token kind, suitable
// for use in diagnostics ("expected ';', found identifier").
func (k TokenKind) String() string {
	if s, ok := tokenNames[k]; ok {
		return s
	}
	return fmt.Sprintf("token(%d)", int(k))
}

// keywords maps IDL keyword spellings to their token kinds. IDL keywords are
// case-sensitive; TRUE and FALSE are boolean literals but lexed as keywords
// for simplicity.
var keywords = map[string]TokenKind{
	"module":    TokModule,
	"interface": TokInterface,
	"struct":    TokStruct,
	"union":     TokUnion,
	"switch":    TokSwitch,
	"case":      TokCase,
	"default":   TokDefault,
	"enum":      TokEnum,
	"typedef":   TokTypedef,
	"const":     TokConst,
	"exception": TokException,
	"raises":    TokRaises,
	"context":   TokContext,
	"oneway":    TokOneway,
	"attribute": TokAttribute,
	"readonly":  TokReadonly,
	"in":        TokIn,
	"out":       TokOut,
	"inout":     TokInout,
	"incopy":    TokIncopy,
	"void":      TokVoid,
	"boolean":   TokBoolean,
	"char":      TokChar,
	"wchar":     TokWChar,
	"octet":     TokOctet,
	"short":     TokShort,
	"long":      TokLong,
	"float":     TokFloat,
	"double":    TokDouble,
	"unsigned":  TokUnsigned,
	"string":    TokString,
	"wstring":   TokWString,
	"sequence":  TokSequence,
	"any":       TokAny,
	"Object":    TokObject,
	"TRUE":      TokTrue,
	"FALSE":     TokFalse,
	"channel":   TokChannel,
	"event":     TokEvent,
}

// Pos is a position in an IDL source file. Line and Column are 1-based.
type Pos struct {
	File   string `json:"file"`
	Line   int    `json:"line"`
	Column int    `json:"col"`
}

// String formats the position as "file:line:col". A zero position formats as
// "-".
func (p Pos) String() string {
	if p.Line == 0 {
		return "-"
	}
	if p.File == "" {
		return fmt.Sprintf("%d:%d", p.Line, p.Column)
	}
	return fmt.Sprintf("%s:%d:%d", p.File, p.Line, p.Column)
}

// Token is a single lexical token with its source position and original
// spelling. For literal tokens, Text holds the raw spelling; the parser is
// responsible for interpreting it.
type Token struct {
	Kind TokenKind
	Text string
	Pos  Pos
}

// String renders the token for diagnostics.
func (t Token) String() string {
	switch t.Kind {
	case TokIdent, TokIntLit, TokFloatLit, TokCharLit, TokStringLit:
		return fmt.Sprintf("%s %q", t.Kind, t.Text)
	default:
		return t.Kind.String()
	}
}
